//! WGS-84 coordinates and great-circle distance.

use rand::Rng;
use std::fmt;

/// Mean Earth radius in kilometres, used by the haversine formula.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A geographic point: latitude/longitude in decimal degrees.
///
/// Every REACT task carries `latitude_j, longitude_j` and every worker a
/// `geographical_location`; both map onto this type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    lat: f64,
    lon: f64,
}

impl GeoPoint {
    /// Creates a point, clamping latitude to `[-90, 90]` and wrapping
    /// longitude into `[-180, 180)`.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = (lon + 180.0) % 360.0;
        if lon < 0.0 {
            lon += 360.0;
        }
        GeoPoint {
            lat,
            lon: lon - 180.0,
        }
    }

    /// Latitude in decimal degrees.
    #[inline]
    pub fn lat(&self) -> f64 {
        self.lat
    }

    /// Longitude in decimal degrees.
    #[inline]
    pub fn lon(&self) -> f64 {
        self.lon
    }

    /// Great-circle (haversine) distance to `other`, in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        haversine_km(self, other)
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.5}, {:.5})", self.lat, self.lon)
    }
}

/// Haversine great-circle distance between two points, in kilometres.
pub fn haversine_km(a: &GeoPoint, b: &GeoPoint) -> f64 {
    let lat1 = a.lat.to_radians();
    let lat2 = b.lat.to_radians();
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().min(1.0).asin()
}

/// Draws a point uniformly inside the given latitude/longitude rectangle.
/// Used by the workload generators to place tasks and workers.
pub fn random_point_in<R: Rng + ?Sized>(
    rng: &mut R,
    lat_range: (f64, f64),
    lon_range: (f64, f64),
) -> GeoPoint {
    let lat = if lat_range.0 == lat_range.1 {
        lat_range.0
    } else {
        rng.gen_range(lat_range.0..lat_range.1)
    };
    let lon = if lon_range.0 == lon_range.1 {
        lon_range.0
    } else {
        rng.gen_range(lon_range.0..lon_range.1)
    };
    GeoPoint::new(lat, lon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn clamps_latitude_and_wraps_longitude() {
        let p = GeoPoint::new(95.0, 0.0);
        assert_eq!(p.lat(), 90.0);
        let p = GeoPoint::new(-100.0, 0.0);
        assert_eq!(p.lat(), -90.0);
        let p = GeoPoint::new(0.0, 190.0);
        assert!((p.lon() - (-170.0)).abs() < 1e-9, "lon = {}", p.lon());
        let p = GeoPoint::new(0.0, -190.0);
        assert!((p.lon() - 170.0).abs() < 1e-9, "lon = {}", p.lon());
    }

    #[test]
    fn distance_to_self_is_zero() {
        let athens = GeoPoint::new(37.9838, 23.7275);
        assert_eq!(athens.distance_km(&athens), 0.0);
    }

    #[test]
    fn known_city_distance() {
        // Athens ↔ Thessaloniki ≈ 300 km great-circle.
        let athens = GeoPoint::new(37.9838, 23.7275);
        let thessaloniki = GeoPoint::new(40.6401, 22.9444);
        let d = athens.distance_km(&thessaloniki);
        assert!((d - 300.0).abs() < 10.0, "distance {d} km");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(10.0, 20.0);
        let b = GeoPoint::new(-33.0, 151.0);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        // b wraps to exactly -180 which is the same meridian.
        assert!((a.distance_km(&b) - half).abs() < 1.0);
    }

    #[test]
    fn one_degree_longitude_at_equator() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 1.0);
        let d = a.distance_km(&b);
        assert!((d - 111.19).abs() < 0.5, "distance {d}");
    }

    #[test]
    fn triangle_inequality_samples() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let p1 = random_point_in(&mut rng, (-60.0, 60.0), (-170.0, 170.0));
            let p2 = random_point_in(&mut rng, (-60.0, 60.0), (-170.0, 170.0));
            let p3 = random_point_in(&mut rng, (-60.0, 60.0), (-170.0, 170.0));
            let d12 = p1.distance_km(&p2);
            let d23 = p2.distance_km(&p3);
            let d13 = p1.distance_km(&p3);
            assert!(d13 <= d12 + d23 + 1e-6);
        }
    }

    #[test]
    fn random_point_stays_in_rect() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let p = random_point_in(&mut rng, (37.0, 38.0), (23.0, 24.0));
            assert!((37.0..38.0).contains(&p.lat()));
            assert!((23.0..24.0).contains(&p.lon()));
        }
    }

    #[test]
    fn random_point_degenerate_rect() {
        let mut rng = SmallRng::seed_from_u64(1);
        let p = random_point_in(&mut rng, (5.0, 5.0), (6.0, 6.0));
        assert_eq!((p.lat(), p.lon()), (5.0, 6.0));
    }

    #[test]
    fn display_formats_coordinates() {
        let p = GeoPoint::new(37.9838, 23.7275);
        assert_eq!(p.to_string(), "(37.98380, 23.72750)");
    }
}
