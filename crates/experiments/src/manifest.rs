//! The declarative sweep manifest.
//!
//! A manifest is a tiny hand-rolled TOML subset (the same machinery as
//! `analyze-baseline.toml` — section headers plus `key = value` lines,
//! no serde) with exactly two sections:
//!
//! ```toml
//! [sweep]
//! name = "quick"              # sweep name (required)
//! seed = 42                   # base seed (default 42)
//! suites = ["scenario"]       # experiment suites to run (required)
//! tasks = 150                 # any other scalar becomes a shared knob
//!
//! [axes]
//! pool = [40, 80]             # each axis: name = [value, ...]
//! matcher = ["react", "greedy"]
//! faults = ["none", "chaos(0.5)"]
//! ```
//!
//! Every combination of axis values becomes one
//! [`RunSpec`](crate::spec::RunSpec) per suite. The **first value of an
//! axis is its default**: a run's seed is derived from the axis
//! components where it *differs* from the default, so appending values
//! to an axis — or adding a whole new axis — never reseeds the runs that
//! already existed (see [`crate::spec`]).

use std::fmt;

use react_metrics::fnv1a64;

/// One scalar manifest value.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestValue {
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A quoted string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
}

impl ManifestValue {
    /// Canonical text form (round-trips through the parser and keys the
    /// per-run seed derivation, so it must be stable).
    pub fn canonical(&self) -> String {
        match self {
            ManifestValue::Int(i) => i.to_string(),
            ManifestValue::Float(x) => format!("{x}"),
            ManifestValue::Str(s) => s.clone(),
            ManifestValue::Bool(b) => b.to_string(),
        }
    }

    /// The value as a string, when textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ManifestValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as `i64`, when integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ManifestValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ManifestValue::Int(i) => Some(*i as f64),
            ManifestValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `bool`, when boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ManifestValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for ManifestValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// A parse problem with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based line in the manifest text (0 for whole-file problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "manifest: {}", self.message)
        } else {
            write!(f, "manifest line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ManifestError {}

fn err(line: usize, message: impl Into<String>) -> ManifestError {
    ManifestError {
        line,
        message: message.into(),
    }
}

/// A parsed sweep manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Sweep name (artifact file stem).
    pub name: String,
    /// Base seed every per-run seed is derived from.
    pub seed: u64,
    /// Experiment suites the axes are swept through, in declaration
    /// order.
    pub suites: Vec<String>,
    /// Shared scalar knobs from `[sweep]` (everything that is not
    /// `name` / `seed` / `suites`), in declaration order.
    pub knobs: Vec<(String, ManifestValue)>,
    /// The axes, in declaration order. Each axis has at least one value;
    /// the first value is the axis default for seed derivation.
    pub axes: Vec<(String, Vec<ManifestValue>)>,
    /// FNV-1a 64 hash of the manifest source text — the provenance
    /// fingerprint stamped on every artifact of the sweep.
    pub hash: u64,
}

impl Manifest {
    /// Parses manifest text.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        #[derive(PartialEq, Clone, Copy)]
        enum Section {
            None,
            Sweep,
            Axes,
        }
        let mut section = Section::None;
        let mut name: Option<String> = None;
        let mut seed: u64 = 42;
        let mut suites: Vec<String> = Vec::new();
        let mut knobs: Vec<(String, ManifestValue)> = Vec::new();
        let mut axes: Vec<(String, Vec<ManifestValue>)> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = match header.trim() {
                    "sweep" => Section::Sweep,
                    "axes" => Section::Axes,
                    other => {
                        return Err(err(
                            lineno,
                            format!("unknown section [{other}] (expected [sweep] or [axes])"),
                        ))
                    }
                };
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, "expected `key = value`"))?;
            let key = key.trim();
            if key.is_empty() {
                return Err(err(lineno, "empty key"));
            }
            let value = value.trim();
            match section {
                Section::None => {
                    return Err(err(lineno, "entry before any [sweep] / [axes] section"))
                }
                Section::Sweep => match key {
                    "name" => {
                        name = Some(
                            parse_scalar(lineno, value)?
                                .as_str()
                                .ok_or_else(|| err(lineno, "name must be a quoted string"))?
                                .to_string(),
                        );
                    }
                    "seed" => {
                        let v = parse_scalar(lineno, value)?
                            .as_i64()
                            .ok_or_else(|| err(lineno, "seed must be an integer"))?;
                        seed = u64::try_from(v)
                            .map_err(|_| err(lineno, "seed must be non-negative"))?;
                    }
                    "suites" => {
                        for v in parse_list(lineno, value)? {
                            let s = v
                                .as_str()
                                .ok_or_else(|| err(lineno, "suites must be quoted strings"))?
                                .to_string();
                            if suites.contains(&s) {
                                return Err(err(lineno, format!("duplicate suite \"{s}\"")));
                            }
                            suites.push(s);
                        }
                    }
                    _ => {
                        if knobs.iter().any(|(k, _)| k == key) {
                            return Err(err(lineno, format!("duplicate knob '{key}'")));
                        }
                        knobs.push((key.to_string(), parse_scalar(lineno, value)?));
                    }
                },
                Section::Axes => {
                    if axes.iter().any(|(k, _)| k == key) {
                        return Err(err(lineno, format!("duplicate axis '{key}'")));
                    }
                    let values = if value.starts_with('[') {
                        parse_list(lineno, value)?
                    } else {
                        vec![parse_scalar(lineno, value)?]
                    };
                    if values.is_empty() {
                        return Err(err(lineno, format!("axis '{key}' has no values")));
                    }
                    let mut seen: Vec<String> = Vec::new();
                    for v in &values {
                        let c = v.canonical();
                        if seen.contains(&c) {
                            return Err(err(lineno, format!("axis '{key}' repeats value {c}")));
                        }
                        seen.push(c);
                    }
                    axes.push((key.to_string(), values));
                }
            }
        }

        let name = name.ok_or_else(|| err(0, "missing [sweep] name"))?;
        if suites.is_empty() {
            return Err(err(
                0,
                "missing [sweep] suites (e.g. suites = [\"scenario\"])",
            ));
        }
        Ok(Manifest {
            name,
            seed,
            suites,
            knobs,
            axes,
            hash: fnv1a64(text.as_bytes()),
        })
    }

    /// Looks up a shared knob.
    pub fn knob(&self, name: &str) -> Option<&ManifestValue> {
        self.knobs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Number of permutations the axes expand to (per suite).
    pub fn permutations(&self) -> usize {
        self.axes.iter().map(|(_, vs)| vs.len()).product()
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses one scalar: quoted string, bool, int or float.
fn parse_scalar(lineno: usize, s: &str) -> Result<ManifestValue, ManifestError> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| err(lineno, format!("unterminated string {s}")))?;
        if body.contains('"') {
            return Err(err(lineno, "embedded quotes are not supported"));
        }
        return Ok(ManifestValue::Str(body.to_string()));
    }
    match s {
        "true" => return Ok(ManifestValue::Bool(true)),
        "false" => return Ok(ManifestValue::Bool(false)),
        "" => return Err(err(lineno, "empty value")),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(ManifestValue::Int(i));
    }
    if let Ok(x) = s.parse::<f64>() {
        if x.is_finite() {
            return Ok(ManifestValue::Float(x));
        }
    }
    Err(err(
        lineno,
        format!("'{s}' is not a string, bool, integer or finite float"),
    ))
}

/// Parses a `[v1, v2, ...]` list of scalars (no nesting).
fn parse_list(lineno: usize, s: &str) -> Result<Vec<ManifestValue>, ManifestError> {
    let s = s.trim();
    let body = s
        .strip_prefix('[')
        .and_then(|b| b.strip_suffix(']'))
        .ok_or_else(|| err(lineno, format!("expected a [..] list, got '{s}'")))?;
    let mut out = Vec::new();
    for part in split_list(body) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_scalar(lineno, part)?);
    }
    Ok(out)
}

/// Splits on commas outside quoted strings.
fn split_list(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a comment
[sweep]
name = "quick"     # trailing comment
seed = 7
suites = ["scenario"]
tasks = 150
arrival_rate = 2.5

[axes]
pool = [40, 80]
matcher = ["react", "greedy", "traditional"]
faults = ["none", "chaos(0.5)"]
flag = true
"#;

    #[test]
    fn parses_sections_knobs_and_axes() {
        let m = Manifest::parse(SAMPLE).expect("parse");
        assert_eq!(m.name, "quick");
        assert_eq!(m.seed, 7);
        assert_eq!(m.suites, vec!["scenario"]);
        assert_eq!(m.knob("tasks"), Some(&ManifestValue::Int(150)));
        assert_eq!(m.knob("arrival_rate"), Some(&ManifestValue::Float(2.5)));
        assert_eq!(m.axes.len(), 4);
        assert_eq!(m.axes[0].0, "pool");
        assert_eq!(
            m.axes[0].1,
            vec![ManifestValue::Int(40), ManifestValue::Int(80)]
        );
        assert_eq!(m.axes[3].1, vec![ManifestValue::Bool(true)]);
        assert_eq!(m.permutations(), 2 * 3 * 2);
    }

    #[test]
    fn hash_tracks_source_text() {
        let a = Manifest::parse(SAMPLE).unwrap();
        let b = Manifest::parse(SAMPLE).unwrap();
        assert_eq!(a.hash, b.hash);
        let c = Manifest::parse(&SAMPLE.replace("seed = 7", "seed = 8")).unwrap();
        assert_ne!(a.hash, c.hash);
    }

    #[test]
    fn comments_respect_strings() {
        let m = Manifest::parse("[sweep]\nname = \"a#b\"\nsuites = [\"scenario\"]\n").unwrap();
        assert_eq!(m.name, "a#b");
    }

    #[test]
    fn rejects_malformed_manifests() {
        for (bad, why) in [
            ("name = \"x\"\n", "entry before section"),
            ("[sweep]\nsuites = [\"s\"]\n", "missing name"),
            ("[sweep]\nname = \"x\"\n", "missing suites"),
            (
                "[sweep]\nname = unquoted\nsuites = [\"s\"]\n",
                "unquoted name",
            ),
            (
                "[sweep]\nname = \"x\"\nseed = -1\nsuites = [\"s\"]\n",
                "negative seed",
            ),
            (
                "[sweep]\nname = \"x\"\nsuites = [\"s\"]\n[bogus]\n",
                "unknown section",
            ),
            (
                "[sweep]\nname = \"x\"\nsuites = [\"s\"]\n[axes]\npool = []\n",
                "empty axis",
            ),
            (
                "[sweep]\nname = \"x\"\nsuites = [\"s\"]\n[axes]\npool = [1, 1]\n",
                "repeated value",
            ),
            (
                "[sweep]\nname = \"x\"\nsuites = [\"s\"]\n[axes]\npool = [1]\npool = [2]\n",
                "duplicate axis",
            ),
            (
                "[sweep]\nname = \"x\"\nsuites = [\"s\", \"s\"]\n",
                "duplicate suite",
            ),
            (
                "[sweep]\nname = \"x\"\nsuites = [\"s\"]\nknob = nan\n",
                "non-finite float",
            ),
        ] {
            assert!(Manifest::parse(bad).is_err(), "{why}: {bad:?}");
        }
    }

    #[test]
    fn scalar_axis_becomes_single_value_list() {
        let m = Manifest::parse("[sweep]\nname = \"x\"\nsuites = [\"s\"]\n[axes]\npool = 40\n")
            .unwrap();
        assert_eq!(m.axes[0].1.len(), 1);
        assert_eq!(m.permutations(), 1);
    }

    #[test]
    fn error_carries_line_numbers() {
        let e = Manifest::parse("[sweep]\nname = \"x\"\nbad value\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }
}
