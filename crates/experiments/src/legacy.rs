//! [`Experiment`] adapters for the pre-existing figure suites.
//!
//! Each adapter wraps one `react_bench` module behind the shared
//! `RunSpec → KpiRow` contract: `expand` yields a single axis-free spec
//! whose seed is the sweep's base seed **directly** (not derived), so
//! the legacy suites reproduce the numbers the old per-suite binaries
//! printed; `run` executes the module, prints its classic report (which
//! also archives the module's historical CSV artifacts through the
//! held [`OutputSink`]) and returns the module's KPI rows for the
//! aggregated sweep report.
//!
//! Suites that measure wall-clock throughput (`fig34`, `regions`,
//! `hotpath`, `cluster`) report `parallel_safe() == false` so the
//! driver pins them to one cell at a time — concurrent cells would
//! poison each other's timings.

use react_bench::report::OutputSink;
use react_bench::{ablation, casestudy, chaos, cluster, endtoend, fig34, hotpath, regions, sweep};
use react_metrics::KpiRow;

use crate::experiment::{ExpandCtx, Experiment};
use crate::spec::RunSpec;

/// The single axis-free spec every legacy suite expands to. The seed is
/// the base seed verbatim — legacy suites must reproduce the numbers
/// they printed before the [`Experiment`] port.
fn single_spec(suite: &str, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String> {
    Ok(vec![RunSpec {
        suite: suite.to_string(),
        index: 0,
        label: String::new(),
        seed_key: String::new(),
        params: Vec::new(),
        seed: ctx.seed,
        quick: ctx.quick,
    }])
}

/// Prefixes every row with an identifying label column (used by suites
/// whose one run yields several distinct row families).
fn prefixed(column: &str, tag: &str, rows: Vec<KpiRow>) -> Vec<KpiRow> {
    rows.into_iter()
        .map(|row| {
            let mut out = KpiRow::new().label(column, tag);
            for (name, value) in row.cells() {
                out.set(name, value.clone());
            }
            out
        })
        .collect()
}

macro_rules! params_for {
    ($spec:expr, $ty:ty) => {{
        let mut params = if $spec.quick {
            <$ty>::quick()
        } else {
            <$ty>::default()
        };
        params.seed = $spec.seed;
        params
    }};
}

/// Figures 3–4: WBGM matching micro-benchmarks.
pub struct Fig34 {
    sink: OutputSink,
}

impl Experiment for Fig34 {
    fn name(&self) -> &'static str {
        "fig34"
    }
    fn title(&self) -> &'static str {
        "Figures 3-4 — WBGM matching time and weight micro-benchmarks"
    }
    fn expand(&self, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String> {
        single_spec(self.name(), ctx)
    }
    fn run(&self, spec: &RunSpec) -> Result<Vec<KpiRow>, String> {
        let params = params_for!(spec, fig34::Fig34Params);
        let points = fig34::run(&params);
        println!("{}", fig34::report(&points, &self.sink));
        Ok(fig34::kpi_rows(&points))
    }
    fn parallel_safe(&self) -> bool {
        false
    }
}

/// Figures 5–8: the end-to-end three-policy comparison.
pub struct EndToEnd {
    sink: OutputSink,
}

impl Experiment for EndToEnd {
    fn name(&self) -> &'static str {
        "endtoend"
    }
    fn title(&self) -> &'static str {
        "Figures 5-8 — end-to-end comparison (REACT / Greedy / Traditional)"
    }
    fn expand(&self, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String> {
        single_spec(self.name(), ctx)
    }
    fn run(&self, spec: &RunSpec) -> Result<Vec<KpiRow>, String> {
        let params = params_for!(spec, endtoend::EndToEndParams);
        let reports = endtoend::run(&params);
        println!("{}", endtoend::report(&reports, &self.sink));
        Ok(endtoend::kpi_rows(&reports))
    }
}

/// Figures 9–10: the scalability sweep.
pub struct Scalability {
    sink: OutputSink,
}

impl Experiment for Scalability {
    fn name(&self) -> &'static str {
        "scalability"
    }
    fn title(&self) -> &'static str {
        "Figures 9-10 — deadline/feedback ratios vs graph size"
    }
    fn expand(&self, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String> {
        single_spec(self.name(), ctx)
    }
    fn run(&self, spec: &RunSpec) -> Result<Vec<KpiRow>, String> {
        let params = params_for!(spec, sweep::SweepParams);
        let points = sweep::run(&params);
        println!("{}", sweep::report(&points, &self.sink));
        Ok(sweep::kpi_rows(&points))
    }
}

/// Region-execution and graph-build scalability (wall clock).
pub struct Regions {
    sink: OutputSink,
    observe: bool,
}

impl Experiment for Regions {
    fn name(&self) -> &'static str {
        "regions"
    }
    fn title(&self) -> &'static str {
        "Region execution and graph build — serial vs parallel wall clock"
    }
    fn expand(&self, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String> {
        single_spec(self.name(), ctx)
    }
    fn run(&self, spec: &RunSpec) -> Result<Vec<KpiRow>, String> {
        let params = params_for!(spec, regions::RegionSweepParams);
        let points = regions::run(&params);
        let pools: &[usize] = if spec.quick {
            &[40, 120]
        } else {
            &[100, 300, 1000]
        };
        let builds = regions::build_scaling(pools, if spec.quick { 30 } else { 100 });
        println!("{}", regions::report(&points, &builds, &self.sink));
        let mut rows = prefixed("series", "regions", regions::kpi_rows(&points));
        rows.extend(prefixed(
            "series",
            "graph_build",
            regions::build_kpi_rows(&builds),
        ));
        if self.observe {
            let observed = regions::observe(&params);
            println!("{}", regions::observe_report(&observed, &self.sink));
            rows.extend(prefixed(
                "series",
                "observability",
                regions::observe_kpi_rows(&observed),
            ));
        }
        Ok(rows)
    }
    fn parallel_safe(&self) -> bool {
        false
    }
}

/// Scheduling hot-path micro-benchmarks (wall clock, BENCH_hotpath.json).
pub struct Hotpath {
    sink: OutputSink,
}

impl Experiment for Hotpath {
    fn name(&self) -> &'static str {
        "hotpath"
    }
    fn title(&self) -> &'static str {
        "Scheduling hot path — build/matcher/tick throughput (BENCH_hotpath.json)"
    }
    fn expand(&self, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String> {
        single_spec(self.name(), ctx)
    }
    fn run(&self, spec: &RunSpec) -> Result<Vec<KpiRow>, String> {
        let params = params_for!(spec, hotpath::HotpathParams);
        let report = hotpath::run(&params, spec.quick);
        println!("{}", hotpath::render(&report, &self.sink));
        let path = hotpath::default_json_path();
        match hotpath::write_json_stamped(&report, &path, &stamp(&self.sink, spec.seed)) {
            Ok(outcome) => println!("# JSON → {}{}", path.display(), describe(&outcome)),
            Err(e) => eprintln!("# failed to write {}: {e}", path.display()),
        }
        let mut rows = prefixed(
            "series",
            "graph_build",
            hotpath::build_kpi_rows(&report.builds),
        );
        rows.extend(prefixed(
            "series",
            "matcher",
            hotpath::matcher_kpi_rows(&report.matchers),
        ));
        rows.extend(prefixed(
            "series",
            "ticks",
            hotpath::tick_kpi_rows(&report.ticks),
        ));
        Ok(rows)
    }
    fn parallel_safe(&self) -> bool {
        false
    }
}

/// Sharded cluster-mode scaling sweep (wall clock, BENCH_cluster.json).
pub struct ClusterSuite {
    sink: OutputSink,
}

impl Experiment for ClusterSuite {
    fn name(&self) -> &'static str {
        "cluster"
    }
    fn title(&self) -> &'static str {
        "Cluster — shard-scaling throughput and fallback identities (BENCH_cluster.json)"
    }
    fn expand(&self, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String> {
        single_spec(self.name(), ctx)
    }
    fn run(&self, spec: &RunSpec) -> Result<Vec<KpiRow>, String> {
        let params = params_for!(spec, cluster::ClusterParams);
        let report = cluster::run(&params, spec.quick);
        println!("{}", cluster::render(&report, &self.sink));
        let path = cluster::default_json_path();
        match cluster::write_json_stamped(&report, &path, &stamp(&self.sink, spec.seed)) {
            Ok(outcome) => println!("# JSON → {}{}", path.display(), describe(&outcome)),
            Err(e) => eprintln!("# failed to write {}: {e}", path.display()),
        }
        let mut rows = prefixed("series", "scaling", cluster::kpi_rows(&report.scaling));
        rows.extend(prefixed(
            "series",
            "fallback",
            cluster::fallback_kpi_rows(&report.fallback),
        ));
        Ok(rows)
    }
    fn parallel_safe(&self) -> bool {
        false
    }
}

/// The provenance stamp a suite's BENCH JSON carries: the sink's own
/// stamp when it has one, else a fresh seed-only stamp — every BENCH
/// artifact is stamped and backup-protected, even under `--no-csv`.
fn stamp(sink: &OutputSink, seed: u64) -> react_metrics::Provenance {
    sink.provenance()
        .cloned()
        .unwrap_or_else(|| react_metrics::Provenance::new(seed))
}

/// Human-readable suffix for an artifact write outcome.
fn describe(outcome: &react_metrics::ArtifactOutcome) -> String {
    match outcome {
        react_metrics::ArtifactOutcome::Created => String::new(),
        react_metrics::ArtifactOutcome::Unchanged => " (unchanged)".to_string(),
        react_metrics::ArtifactOutcome::BackedUp(prev) => {
            format!(" (prior kept as {})", prev.display())
        }
    }
}

/// Chaos sweep: deadline misses and recovery under injected faults.
pub struct Chaos {
    sink: OutputSink,
}

impl Experiment for Chaos {
    fn name(&self) -> &'static str {
        "chaos"
    }
    fn title(&self) -> &'static str {
        "Chaos — deadline misses and recovery latency under injected faults"
    }
    fn expand(&self, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String> {
        single_spec(self.name(), ctx)
    }
    fn run(&self, spec: &RunSpec) -> Result<Vec<KpiRow>, String> {
        let params = params_for!(spec, chaos::ChaosParams);
        let points = chaos::run(&params);
        println!("{}", chaos::report(&points, &self.sink));
        Ok(chaos::kpi_rows(&points))
    }
}

/// CrowdFlower case-study statistics.
pub struct CaseStudy {
    sink: OutputSink,
}

impl Experiment for CaseStudy {
    fn name(&self) -> &'static str {
        "case"
    }
    fn title(&self) -> &'static str {
        "CrowdFlower case study — synthetic-trace statistics (Sec. V-C)"
    }
    fn expand(&self, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String> {
        single_spec(self.name(), ctx)
    }
    fn run(&self, spec: &RunSpec) -> Result<Vec<KpiRow>, String> {
        let n = if spec.quick { 5_000 } else { 50_000 };
        let summary = casestudy::run(n, spec.seed);
        println!("{}", casestudy::report(&summary, &self.sink));
        Ok(casestudy::kpi_rows(&summary))
    }
}

/// All eleven design-choice ablations.
pub struct Ablation {
    sink: OutputSink,
}

impl Experiment for Ablation {
    fn name(&self) -> &'static str {
        "ablation"
    }
    fn title(&self) -> &'static str {
        "Ablations — the eleven design-choice isolations of DESIGN.md"
    }
    fn expand(&self, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String> {
        single_spec(self.name(), ctx)
    }
    fn run(&self, spec: &RunSpec) -> Result<Vec<KpiRow>, String> {
        let params = params_for!(spec, ablation::AblationParams);
        let mut rows = Vec::new();
        for (name, title, csv_name, rows_fn) in ablation::SUITE {
            let ablation_rows = rows_fn(&params);
            let report = react_metrics::KpiReport::from_rows(ablation_rows.clone());
            self.sink.write(csv_name, &report.to_csv_rows(None));
            println!("{}", report.table(title, None).render());
            rows.extend(prefixed("ablation", name, ablation_rows));
        }
        Ok(rows)
    }
}

/// All nine legacy suites, in the classic `all` presentation order,
/// sharing one output sink.
pub fn legacy_suites(sink: &OutputSink, observe: bool) -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(Fig34 { sink: sink.clone() }),
        Box::new(EndToEnd { sink: sink.clone() }),
        Box::new(Scalability { sink: sink.clone() }),
        Box::new(Regions {
            sink: sink.clone(),
            observe,
        }),
        Box::new(Hotpath { sink: sink.clone() }),
        Box::new(CaseStudy { sink: sink.clone() }),
        Box::new(Ablation { sink: sink.clone() }),
        Box::new(Chaos { sink: sink.clone() }),
        Box::new(ClusterSuite { sink: sink.clone() }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(quick: bool, seed: u64) -> ExpandCtx<'static> {
        ExpandCtx {
            quick,
            seed,
            manifest: None,
        }
    }

    #[test]
    fn every_legacy_suite_expands_to_one_unseeded_spec() {
        let sink = OutputSink::discard();
        for suite in legacy_suites(&sink, false) {
            let specs = suite.expand(&ctx(true, 1234)).unwrap();
            assert_eq!(specs.len(), 1, "{} must expand to one spec", suite.name());
            let spec = &specs[0];
            assert_eq!(spec.seed, 1234, "{} must take the base seed", suite.name());
            assert!(spec.quick);
            assert_eq!(spec.label, "");
            assert_eq!(spec.suite, suite.name());
        }
    }

    #[test]
    fn suite_names_are_unique_and_stable() {
        let sink = OutputSink::discard();
        let names: Vec<&str> = legacy_suites(&sink, false)
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(
            names,
            vec![
                "fig34",
                "endtoend",
                "scalability",
                "regions",
                "hotpath",
                "case",
                "ablation",
                "chaos",
                "cluster",
            ]
        );
    }

    #[test]
    fn wall_clock_suites_refuse_parallel_cells() {
        let sink = OutputSink::discard();
        for suite in legacy_suites(&sink, false) {
            let expected = !matches!(suite.name(), "fig34" | "regions" | "hotpath" | "cluster");
            assert_eq!(
                suite.parallel_safe(),
                expected,
                "{} parallel_safe",
                suite.name()
            );
        }
    }

    #[test]
    fn case_suite_reproduces_old_numbers() {
        let sink = OutputSink::discard();
        let suite = CaseStudy { sink };
        let spec = &suite.expand(&ctx(true, 42)).unwrap()[0];
        let rows = suite.run(spec).unwrap();
        assert_eq!(rows.len(), 1);
        // Same synthesis path as the old `react-experiments case --quick`.
        let direct = casestudy::kpi_rows(&casestudy::run(5_000, 42));
        assert_eq!(rows[0].to_json(), direct[0].to_json());
    }

    #[test]
    fn prefixed_rows_lead_with_the_tag_column() {
        let rows = prefixed("series", "scaling", vec![KpiRow::new().int("workers", 7)]);
        let cols: Vec<&str> = rows[0].columns().collect();
        assert_eq!(cols, vec!["series", "workers"]);
    }
}
