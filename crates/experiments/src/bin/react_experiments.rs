//! `react-experiments` — one CLI for every experiment suite.
//!
//! The classic figure commands (`fig3` … `cluster`, `all`) are kept
//! verbatim; the new `sweep <manifest.toml>` command expands a
//! declarative manifest into a deterministic run grid and fans it out
//! across cores. Either way the generic driver in
//! [`react_experiments::sweep`] aggregates one provenance-stamped KPI
//! report.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use react_bench::report::OutputSink;
use react_experiments::{registry, run_suites, suite, Experiment, Manifest, SweepOptions};
use react_metrics::{ArtifactOutcome, Provenance};

const USAGE: &str = "\
react-experiments — unified experiment runner

USAGE:
    react-experiments <command> [flags]

COMMANDS:
    sweep <manifest.toml>   expand and run a declarative sweep manifest
    all                     every legacy suite (examples/sweep_all.toml)
    list                    list registered suites
    fig3|fig4               WBGM matching micro-benchmarks (Figures 3-4)
    fig5|fig6|fig7|fig8     end-to-end comparison (Figures 5-8)
    fig9|fig10              scalability sweep (Figures 9-10)
    regions                 region/graph-build wall-clock scaling
    hotpath                 scheduling hot-path micro-benchmarks
    case                    CrowdFlower case study (Sec. V-C)
    ablation                the eleven design-choice ablations
    chaos                   fault-injection chaos sweep
    cluster                 sharded cluster-mode scaling
    load                    open-loop TCP replay through the ingest door

FLAGS:
    --quick        reduced sizes (seconds instead of minutes)
    --observe      add the observability-overhead pass to `regions`
    --no-csv       skip CSV/JSON-lines artifacts
    --seed N       base seed (default 42; overrides a manifest's seed)
    --out DIR      artifact directory (default results/)
    --jobs N       worker cap for parallel-safe suites (default: cores)
    --serial       force single-threaded execution
";

struct Cli {
    command: String,
    manifest_path: Option<PathBuf>,
    quick: bool,
    observe: bool,
    no_csv: bool,
    seed: u64,
    seed_given: bool,
    out: PathBuf,
    jobs: Option<usize>,
    serial: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let mut cli = Cli {
        command: String::new(),
        manifest_path: None,
        quick: false,
        observe: false,
        no_csv: false,
        seed: 42,
        seed_given: false,
        out: PathBuf::from("results"),
        jobs: None,
        serial: false,
    };
    let mut positional = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cli.quick = true,
            "--observe" => cli.observe = true,
            "--no-csv" => cli.no_csv = true,
            "--serial" => cli.serial = true,
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                cli.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
                cli.seed_given = true;
            }
            "--out" => {
                cli.out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs `{v}`"))?;
                cli.jobs = Some(n.max(1));
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => positional.push(other.to_string()),
        }
    }
    let mut positional = positional.into_iter();
    cli.command = positional.next().ok_or("missing command")?;
    if cli.command == "sweep" {
        cli.manifest_path = Some(PathBuf::from(
            positional.next().ok_or("sweep needs a manifest path")?,
        ));
    }
    if let Some(extra) = positional.next() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    Ok(cli)
}

/// Locates `examples/sweep_all.toml` from the build-time workspace root,
/// falling back to the current directory for relocated binaries.
fn sweep_all_manifest() -> PathBuf {
    let baked = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/sweep_all.toml");
    if baked.exists() {
        baked
    } else {
        PathBuf::from("examples/sweep_all.toml")
    }
}

fn load_manifest(path: &Path) -> Result<Manifest, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("could not read {}: {e}", path.display()))?;
    Manifest::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn run(cli: &Cli) -> Result<(), String> {
    // The manifest (when any) decides the suite list and the base seed.
    let manifest = match cli.command.as_str() {
        "sweep" => Some(load_manifest(cli.manifest_path.as_deref().unwrap())?),
        "all" => Some(load_manifest(&sweep_all_manifest())?),
        _ => None,
    };
    let mut manifest = manifest;
    if cli.seed_given {
        if let Some(m) = manifest.as_mut() {
            m.seed = cli.seed;
        }
    }
    let base_seed = manifest.as_ref().map(|m| m.seed).unwrap_or(cli.seed);

    let mut provenance = Provenance::new(base_seed);
    if let Some(m) = &manifest {
        provenance = provenance.with_manifest_hash(m.hash);
    }
    provenance = provenance
        .with_git_revision_from(&std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")));

    // Even a discard sink carries the stamp: the BENCH JSONs are
    // written regardless of `--no-csv` and must stay attributable.
    let sink = if cli.no_csv {
        OutputSink::discard()
    } else {
        OutputSink::to_dir(&cli.out)
    }
    .with_provenance(provenance);
    let all = registry(&sink, cli.observe);
    if cli.command == "list" {
        for s in &all {
            println!("{:12} {}", s.name(), s.title());
        }
        return Ok(());
    }
    if let Some(dir) = sink.dir() {
        println!("# CSVs → {}/\n", dir.display());
    }

    let names: Vec<String> = match &manifest {
        Some(m) => m.suites.clone(),
        None => vec![cli.command.clone()],
    };
    let mut selected: Vec<&dyn Experiment> = Vec::new();
    for name in &names {
        let canonical = suite(name).ok_or_else(|| format!("unknown suite `{name}`"))?;
        let exp = all
            .iter()
            .find(|s| s.name() == canonical)
            .ok_or_else(|| format!("suite `{canonical}` is not registered"))?;
        selected.push(exp.as_ref());
    }

    let opts = SweepOptions {
        quick: cli.quick,
        seed: cli.seed,
        jobs: cli.jobs,
        serial: cli.serial,
        out_dir: if cli.no_csv {
            None
        } else {
            Some(cli.out.clone())
        },
    };
    let outcome = run_suites(&selected, manifest.as_ref(), &opts)?;

    // Legacy suites print their classic reports while running; the
    // driver's aggregate table is the view for manifest-grid suites.
    for (exp, table) in selected.iter().zip(&outcome.tables) {
        if exp.name() == "scenario" {
            println!("{table}");
        }
    }
    println!(
        "# {} run(s) across {} suite(s), base seed {base_seed}",
        outcome.total_runs,
        selected.len()
    );
    for (path, result) in &outcome.artifacts {
        match result {
            ArtifactOutcome::Created => println!("# KPI → {}", path.display()),
            ArtifactOutcome::Unchanged => {
                println!("# KPI → {} (unchanged)", path.display())
            }
            ArtifactOutcome::BackedUp(prev) => {
                println!(
                    "# KPI → {} (prior kept as {})",
                    path.display(),
                    prev.display()
                )
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprint!("{USAGE}");
            return if e.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    match run(&cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
