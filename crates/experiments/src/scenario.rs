//! The `scenario` suite: the fully manifest-driven experiment.
//!
//! Each run builds one crowd scenario from its axis coordinates — pool
//! size, matcher (with cycle budget), fault plan, shard count,
//! replicate index — executes it deterministically (single server via
//! [`ScenarioRunner`], sharded via [`ClusterRunner`]'s serial path), and
//! reads its KPIs from the run report, the attached
//! [`RecordingObserver`] and the audit log. Every emitted value is
//! simulation-deterministic (no wall clock), which is what makes sweep
//! reports byte-identical across reruns and thread counts.
//!
//! Recognised axes/knobs (axes override knobs of the same name):
//!
//! | name           | kind  | default      | meaning                              |
//! |----------------|-------|--------------|--------------------------------------|
//! | `pool`         | int   | 40           | workers registered at t = 0          |
//! | `matcher`      | str   | `react`      | `react[-C]`, `adaptive`, `metropolis[-C]`, `greedy`, `traditional`, `hungarian`, `auction`, `maxcard` |
//! | `cycles`       | int   | 1000         | cycle budget for react/metropolis    |
//! | `kappa`        | float | 0.2          | cycles/edge for `adaptive`           |
//! | `faults`       | str   | `none`       | [`FaultPlan::from_manifest`] spec    |
//! | `shards`       | int   | 1            | shard count (>1 runs the cluster)    |
//! | `policy`       | str   | `coupled`    | [`ClusterPolicy::from_manifest`] spec|
//! | `replicate`    | int   | 0            | replicate index (seed axis only)     |
//! | `tasks`        | int   | 5 × pool     | total tasks submitted                |
//! | `arrival_rate` | float | pool / 15    | task arrivals per second             |

use std::collections::BTreeMap;

use react_cluster::{ClusterPolicy, ClusterReport, ClusterRunner, ClusterScenario};
use react_core::events::{AuditLog, TaskEventKind};
use react_core::{MatcherPolicy, RecoveryConfig, TaskId};
use react_crowd::{RunReport, Scenario, ScenarioRunner};
use react_faults::FaultPlan;
use react_metrics::KpiRow;
use react_obs::{CounterKind, RecordingObserver};

use crate::experiment::{ExpandCtx, Experiment};
use crate::spec::{expand, RunSpec};

/// The manifest-driven scenario sweep suite.
pub struct ScenarioSweep;

impl Experiment for ScenarioSweep {
    fn name(&self) -> &'static str {
        "scenario"
    }

    fn title(&self) -> &'static str {
        "manifest-driven crowd scenario sweep (pool × matcher × faults × shards)"
    }

    fn expand(&self, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String> {
        let manifest = ctx
            .manifest
            .ok_or("the scenario suite is manifest-driven; run it via `sweep <manifest>`")?;
        let specs = expand(manifest, self.name(), ctx.quick);
        // Validate every coordinate eagerly: a sweep must fail before
        // its first run, not in the middle of a fan-out.
        for spec in &specs {
            build_config(spec).map_err(|e| format!("run '{}': {e}", spec.label))?;
        }
        Ok(specs)
    }

    fn run(&self, spec: &RunSpec) -> Result<Vec<KpiRow>, String> {
        let cfg = build_config(spec)?;
        Ok(vec![run_config(&cfg, spec)])
    }

    fn table_columns(&self) -> Option<Vec<&'static str>> {
        Some(vec![
            "suite",
            "run",
            "kpi.received",
            "tasks.completed",
            "deadlines.met",
            "kpi.deadline_hit_rate",
            "kpi.assign_latency_p50_s",
            "kpi.assign_latency_p99_s",
            "recovery.tasks_shed",
            "shard.handoffs",
            "kpi.tasks_per_sim_s",
        ])
    }
}

/// A validated scenario configuration.
struct RunConfig {
    scenario: Scenario,
    shards: usize,
    policy: ClusterPolicy,
}

fn build_config(spec: &RunSpec) -> Result<RunConfig, String> {
    let pool = spec.usize_param("pool").unwrap_or(40);
    if pool == 0 {
        return Err("pool must be at least 1".to_string());
    }
    let cycles = spec.usize_param("cycles").unwrap_or(1000);
    let kappa = spec.f64_param("kappa").unwrap_or(0.2);
    let matcher = parse_matcher(spec.str_param("matcher").unwrap_or("react"), cycles, kappa)?;
    let faults = FaultPlan::from_manifest(spec.str_param("faults").unwrap_or("none"))?;
    let shards = spec.usize_param("shards").unwrap_or(1);
    if shards == 0 {
        return Err("shards must be at least 1".to_string());
    }
    let policy = ClusterPolicy::from_manifest(spec.str_param("policy").unwrap_or("coupled"))?;
    let tasks = spec.usize_param("tasks").unwrap_or(5 * pool);
    let arrival_rate = spec.f64_param("arrival_rate").unwrap_or(pool as f64 / 15.0);
    let arrival_ok = arrival_rate.is_finite() && arrival_rate > 0.0;
    if !arrival_ok {
        return Err(format!("arrival_rate must be positive, got {arrival_rate}"));
    }

    let mut sc = Scenario::smoke(matcher, spec.seed);
    sc.label = if spec.label.is_empty() {
        "scenario".to_string()
    } else {
        spec.label.clone()
    };
    sc.n_workers = pool;
    sc.arrival_rate = arrival_rate;
    sc.total_tasks = tasks;
    sc.config.audit = true;
    if !faults.is_noop() {
        // Same posture as the chaos suite: faults without the recovery
        // ladder just measure how fast everything dies.
        sc.config.recovery = RecoveryConfig::aggressive(30.0);
        sc.faults = Some(faults);
    }
    Ok(RunConfig {
        scenario: sc,
        shards,
        policy,
    })
}

/// Maps a manifest matcher name (optionally with an embedded `-cycles`
/// budget) to a [`MatcherPolicy`].
fn parse_matcher(name: &str, cycles: usize, kappa: f64) -> Result<MatcherPolicy, String> {
    let (base, embedded) = match name.rsplit_once('-') {
        Some((base, digits))
            if digits.chars().all(|c| c.is_ascii_digit()) && !digits.is_empty() =>
        {
            (base, digits.parse::<usize>().ok())
        }
        _ => (name, None),
    };
    let budget = embedded.unwrap_or(cycles).max(1);
    match base {
        "react" => Ok(MatcherPolicy::React { cycles: budget }),
        "adaptive" | "react-adaptive" => Ok(MatcherPolicy::ReactAdaptive { kappa }),
        "metropolis" => Ok(MatcherPolicy::Metropolis { cycles: budget }),
        "greedy" => Ok(MatcherPolicy::Greedy),
        "traditional" => Ok(MatcherPolicy::Traditional),
        "hungarian" => Ok(MatcherPolicy::Hungarian),
        "auction" => Ok(MatcherPolicy::Auction),
        "maxcard" | "max-cardinality" => Ok(MatcherPolicy::MaxCardinality),
        other => Err(format!(
            "unknown matcher '{other}' (expected react[-C], adaptive, metropolis[-C], \
             greedy, traditional, hungarian, auction or maxcard)"
        )),
    }
}

/// Splits a shard count into the most square `rows × cols` grid.
fn grid_for(shards: usize) -> (u32, u32) {
    let mut rows = 1;
    let mut d = 1;
    while d * d <= shards {
        if shards.is_multiple_of(d) {
            rows = d;
        }
        d += 1;
    }
    (rows as u32, (shards / rows) as u32)
}

fn run_config(cfg: &RunConfig, spec: &RunSpec) -> KpiRow {
    let recording = RecordingObserver::new();
    let observer = std::sync::Arc::new(recording.clone());
    if cfg.shards <= 1 {
        let report = ScenarioRunner::new(cfg.scenario.clone())
            .with_observer(observer)
            .run();
        single_row(spec, &report, &recording)
    } else {
        let (rows, cols) = grid_for(cfg.shards);
        let cluster = ClusterScenario {
            global: cfg.scenario.clone(),
            rows,
            cols,
            policy: cfg.policy,
        };
        // Serial shard ticking: bit-identical to the parallel path by
        // the cluster's own tests, and independent of the executor's
        // thread placement — the sweep's byte-identity depends on it.
        let report = ClusterRunner::new(cluster)
            .with_observer(observer)
            .run_serial();
        cluster_row(spec, &report, &recording)
    }
}

/// Columns shared by single-server and cluster rows, so the aggregated
/// report has one stable schema.
fn base_row(spec: &RunSpec, rec: &RecordingObserver) -> KpiRow {
    KpiRow::new()
        .label("faults", spec.str_param("faults").unwrap_or("none"))
        .int(
            "tasks.assigned",
            rec.counter(CounterKind::TasksAssigned) as i64,
        )
        .int(
            "tasks.completed",
            rec.counter(CounterKind::TasksCompleted) as i64,
        )
        .int(
            "deadlines.met",
            rec.counter(CounterKind::DeadlinesMet) as i64,
        )
        .int(
            "feedback.positive",
            rec.counter(CounterKind::PositiveFeedback) as i64,
        )
        .int(
            "tasks.expired",
            rec.counter(CounterKind::TasksExpired) as i64,
        )
        .int(
            "tasks.reassigned",
            rec.counter(CounterKind::Reassignments) as i64,
        )
        .int("batches.run", rec.counter(CounterKind::BatchesRun) as i64)
        .int(
            "recovery.timeout_recalls",
            rec.counter(CounterKind::TimeoutRecalls) as i64,
        )
        .int(
            "recovery.tasks_shed",
            rec.counter(CounterKind::TasksShed) as i64,
        )
        .int(
            "fault.dropouts",
            rec.counter(CounterKind::FaultDropouts) as i64,
        )
        .int(
            "fault.abandons",
            rec.counter(CounterKind::FaultAbandons) as i64,
        )
        .int(
            "shard.handoffs",
            rec.counter(CounterKind::ShardHandoffs) as i64,
        )
        .int(
            "shard.workers_rebalanced",
            rec.counter(CounterKind::ShardWorkersRebalanced) as i64,
        )
        .int(
            "shard.admission_shed",
            rec.counter(CounterKind::ShardAdmissionShed) as i64,
        )
}

fn single_row(spec: &RunSpec, report: &RunReport, rec: &RecordingObserver) -> KpiRow {
    let latencies = report
        .audit
        .as_ref()
        .map(assignment_latencies)
        .unwrap_or_default();
    finish_row(
        base_row(spec, rec)
            .int("kpi.received", report.received as i64)
            .int("kpi.shards", 1),
        report.received,
        report.met_deadline,
        report.total_matching_seconds,
        report.sim_duration,
        report.completed,
        &latencies,
    )
}

fn cluster_row(spec: &RunSpec, report: &ClusterReport, rec: &RecordingObserver) -> KpiRow {
    let mut latencies: Vec<f64> = Vec::new();
    for shard in &report.shards {
        if let Some(audit) = &shard.audit {
            latencies.extend(assignment_latencies(audit));
        }
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let matching: f64 = report.shards.iter().map(|s| s.total_matching_seconds).sum();
    finish_row(
        base_row(spec, rec)
            .int("kpi.received", report.received as i64)
            .int("kpi.shards", report.shards.len() as i64),
        report.received,
        report.met_deadline(),
        matching,
        report.sim_duration,
        report.completed(),
        &latencies,
    )
}

#[allow(clippy::too_many_arguments)]
fn finish_row(
    row: KpiRow,
    received: u64,
    met: u64,
    matching_seconds: f64,
    sim_duration: f64,
    completed: u64,
    latencies: &[f64],
) -> KpiRow {
    let hit_rate = if received > 0 {
        met as f64 / received as f64
    } else {
        0.0
    };
    let throughput = if sim_duration > 0.0 {
        completed as f64 / sim_duration
    } else {
        0.0
    };
    row.pct("kpi.deadline_hit_rate", hit_rate)
        .float("kpi.assign_latency_p50_s", percentile(latencies, 0.50))
        .float("kpi.assign_latency_p99_s", percentile(latencies, 0.99))
        .float("matching.seconds", matching_seconds)
        .float("kpi.sim_duration_s", sim_duration)
        .float("kpi.tasks_per_sim_s", throughput)
}

/// Submission→first-assignment latencies (sim seconds), sorted.
fn assignment_latencies(audit: &AuditLog) -> Vec<f64> {
    let mut submitted: BTreeMap<TaskId, f64> = BTreeMap::new();
    let mut latencies: Vec<f64> = Vec::new();
    for ev in audit.events() {
        match ev.kind {
            TaskEventKind::Submitted => {
                submitted.entry(ev.task).or_insert(ev.at);
            }
            TaskEventKind::Assigned { .. } => {
                if let Some(t0) = submitted.remove(&ev.task) {
                    latencies.push(ev.at - t0);
                }
            }
            _ => {}
        }
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    latencies
}

/// Nearest-rank percentile over a sorted slice; 0 when empty.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;

    fn mini_manifest() -> Manifest {
        Manifest::parse(
            "[sweep]\nname = \"mini\"\nseed = 7\nsuites = [\"scenario\"]\n\
             tasks = 40\n[axes]\npool = [12]\nmatcher = [\"react\", \"greedy\"]\n\
             shards = [1, 2]\n",
        )
        .expect("manifest")
    }

    #[test]
    fn expand_validates_eagerly() {
        let m = Manifest::parse(
            "[sweep]\nname = \"bad\"\nsuites = [\"scenario\"]\n\
             [axes]\nmatcher = [\"quantum\"]\n",
        )
        .unwrap();
        let ctx = ExpandCtx {
            quick: true,
            seed: m.seed,
            manifest: Some(&m),
        };
        let err = ScenarioSweep.expand(&ctx).unwrap_err();
        assert!(err.contains("unknown matcher"), "{err}");
    }

    #[test]
    fn runs_are_deterministic_and_schema_stable() {
        let m = mini_manifest();
        let ctx = ExpandCtx {
            quick: true,
            seed: m.seed,
            manifest: Some(&m),
        };
        let specs = ScenarioSweep.expand(&ctx).expect("expand");
        assert_eq!(specs.len(), 4);
        let first = ScenarioSweep.run(&specs[3]).expect("run");
        let again = ScenarioSweep.run(&specs[3]).expect("run");
        assert_eq!(first, again, "same spec must reproduce identical KPIs");
        let single = ScenarioSweep.run(&specs[0]).expect("run");
        let cols_a: Vec<&str> = first[0].columns().collect();
        let cols_b: Vec<&str> = single[0].columns().collect();
        assert_eq!(cols_a, cols_b, "cluster and single rows share one schema");
        assert!(first[0].metric("kpi.shards") == Some(2.0));
        assert!(single[0].metric("kpi.received").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn matcher_names_parse_with_embedded_budgets() {
        assert_eq!(
            parse_matcher("react-300", 1000, 0.2),
            Ok(MatcherPolicy::React { cycles: 300 })
        );
        assert_eq!(
            parse_matcher("react", 700, 0.2),
            Ok(MatcherPolicy::React { cycles: 700 })
        );
        assert_eq!(
            parse_matcher("metropolis-50", 1000, 0.2),
            Ok(MatcherPolicy::Metropolis { cycles: 50 })
        );
        assert_eq!(
            parse_matcher("maxcard", 1, 0.2),
            Ok(MatcherPolicy::MaxCardinality)
        );
        assert!(parse_matcher("quantum", 1, 0.2).is_err());
    }

    #[test]
    fn grid_splits_are_most_square() {
        assert_eq!(grid_for(1), (1, 1));
        assert_eq!(grid_for(2), (1, 2));
        assert_eq!(grid_for(4), (2, 2));
        assert_eq!(grid_for(6), (2, 3));
        assert_eq!(grid_for(8), (2, 4));
        assert_eq!(grid_for(7), (1, 7));
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.5), 2.0);
        assert_eq!(percentile(&xs, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
