//! The [`Experiment`] trait — the one API every suite implements.
//!
//! An experiment knows how to **expand** into a deterministic list of
//! [`RunSpec`]s (from CLI defaults, or from a sweep manifest's axes) and
//! how to **run** one spec into [`KpiRow`]s. Everything else — fan-out
//! across cores, aggregation, rendering, artifact writing — is generic
//! driver code in [`crate::sweep`], shared by all suites instead of
//! duplicated per suite as before.

use react_metrics::KpiRow;

use crate::manifest::Manifest;
use crate::spec::RunSpec;

/// Context a suite expands its run list from.
#[derive(Debug, Clone, Copy)]
pub struct ExpandCtx<'a> {
    /// Reduced sizes (seconds instead of minutes).
    pub quick: bool,
    /// Base seed (the manifest's seed when sweeping, the CLI `--seed`
    /// otherwise).
    pub seed: u64,
    /// The sweep manifest, when expansion is manifest-driven. Suites
    /// with intrinsic cell lists (the legacy figure suites) ignore it;
    /// the `scenario` suite requires it.
    pub manifest: Option<&'a Manifest>,
}

/// A family of runs with a common `RunSpec → KpiRow` contract.
pub trait Experiment: Sync {
    /// Stable suite name (manifest `suites = [...]` entries, CLI
    /// commands and the `suite` KPI column all use it).
    fn name(&self) -> &'static str;

    /// One-line human description for `react-experiments list`.
    fn title(&self) -> &'static str;

    /// Expands into the deterministic run list.
    fn expand(&self, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String>;

    /// Executes one spec. Most suites emit exactly one row per spec;
    /// suites whose cell measures several variants at once (ablation)
    /// may emit several. The driver prepends the `suite` / `run` /
    /// `seed` identity columns — rows here carry only the suite's own
    /// coordinates and KPIs.
    fn run(&self, spec: &RunSpec) -> Result<Vec<KpiRow>, String>;

    /// Whether cells may execute concurrently. Suites measuring
    /// wall-clock throughput (hotpath, regions, cluster, fig34) return
    /// `false` so concurrent cells don't poison each other's timings;
    /// purely sim-time suites keep the all-cores default.
    fn parallel_safe(&self) -> bool {
        true
    }

    /// Column subset for the terminal summary table (`None` = all).
    /// CSV/JSON-lines always carry every column.
    fn table_columns(&self) -> Option<Vec<&'static str>> {
        None
    }
}
