//! The sweep executor: fans run specs out across all cores.
//!
//! A shared atomic cursor over the spec list gives work stealing without
//! queues: each scoped worker thread claims the next unclaimed index,
//! runs it, and appends `(index, result)` to a thread-local batch that
//! is merged and re-sorted at the end. Results are therefore a pure
//! function of the spec list — **byte-identical between serial and
//! parallel execution and across thread counts** — which the
//! `sweep_determinism` proptest pins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use react_core::par::parallelism;

/// Runs `f` over `0..n` with up to `jobs` worker threads (`None` =
/// [`parallelism`], the all-cores default honoring
/// `REACT_PARALLEL_THREADS`). Returns results in index order regardless
/// of scheduling.
pub fn run_indexed<T, F>(n: usize, jobs: Option<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.unwrap_or_else(parallelism).max(1).min(n.max(1));
    if jobs <= 1 {
        return (0..n).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    local.push((idx, f(idx)));
                }
                if !local.is_empty() {
                    match collected.lock() {
                        Ok(mut all) => all.extend(local),
                        Err(poisoned) => poisoned.into_inner().extend(local),
                    }
                }
            });
        }
    });

    let mut all = match collected.into_inner() {
        Ok(all) => all,
        Err(poisoned) => poisoned.into_inner(),
    };
    all.sort_by_key(|(idx, _)| *idx);
    all.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let serial = run_indexed(100, Some(1), |i| i * i);
        let parallel = run_indexed(100, Some(8), |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = run_indexed(257, Some(5), |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
        let distinct: BTreeSet<usize> = out.iter().copied().collect();
        assert_eq!(distinct.len(), 257);
    }

    #[test]
    fn zero_and_one_item_edge_cases() {
        assert!(run_indexed(0, None, |i| i).is_empty());
        assert_eq!(run_indexed(1, Some(16), |i| i + 1), vec![1]);
    }
}
