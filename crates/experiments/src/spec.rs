//! Deterministic expansion of a [`Manifest`] into [`RunSpec`]s.
//!
//! ## Seed stability
//!
//! Each run's seed is `SplitMix64`-derived from the sweep's base seed,
//! the suite name and the run's **seed key**: the sorted
//! `axis=value` components where the run *differs from the axis
//! default* (an axis's first declared value). Consequences:
//!
//! * permutation order, axis declaration order and value order don't
//!   affect seeds (the key is sorted and value-addressed);
//! * appending values to an axis adds new runs without reseeding the
//!   existing ones;
//! * adding a whole new axis leaves every pre-existing run (which takes
//!   the new axis's default) with its old seed — the new axis simply
//!   contributes nothing to their keys.
//!
//! The manifest *hash* deliberately does **not** enter seed derivation —
//! it fingerprints artifacts for provenance, while seeds must survive
//! manifest edits that only extend coverage.

use react_metrics::fnv1a64;
use react_sim::splitmix64;

use crate::manifest::{Manifest, ManifestValue};

/// One fully-specified experiment run: the `RunSpec → KpiRow(s)`
/// contract's input.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// The suite that executes this spec.
    pub suite: String,
    /// Position in the expanded run list (stable across reruns of the
    /// same manifest).
    pub index: usize,
    /// Human-facing coordinates, axes in declaration order
    /// (`pool=40,matcher=react,...`). Empty for axis-free suites.
    pub label: String,
    /// The sorted, default-elided components that key seed derivation.
    pub seed_key: String,
    /// Axis coordinates followed by shared knobs, in declaration order.
    pub params: Vec<(String, ManifestValue)>,
    /// The run's derived seed.
    pub seed: u64,
    /// Whether the suite should use its reduced "quick" sizes.
    pub quick: bool,
}

impl RunSpec {
    /// Looks up a parameter (axis coordinate or shared knob).
    pub fn get(&self, name: &str) -> Option<&ManifestValue> {
        self.params.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// String parameter.
    pub fn str_param(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(ManifestValue::as_str)
    }

    /// Integer parameter as `usize`.
    pub fn usize_param(&self, name: &str) -> Option<usize> {
        self.get(name)
            .and_then(ManifestValue::as_i64)
            .and_then(|v| usize::try_from(v).ok())
    }

    /// Numeric parameter as `f64`.
    pub fn f64_param(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(ManifestValue::as_f64)
    }

    /// A required parameter, as an error message when missing.
    pub fn require(&self, name: &str) -> Result<&ManifestValue, String> {
        self.get(name)
            .ok_or_else(|| format!("run '{}' is missing parameter '{name}'", self.label))
    }
}

/// Derives a run seed from `(base, suite, seed_key)`.
pub fn derive_seed(base: u64, suite: &str, seed_key: &str) -> u64 {
    let mut z = base;
    z ^= splitmix64(fnv1a64(suite.as_bytes()));
    z ^= splitmix64(fnv1a64(seed_key.as_bytes()).rotate_left(17));
    splitmix64(z)
}

/// Expands the manifest's axes into one [`RunSpec`] per permutation for
/// `suite`. Permutations enumerate in odometer order: the **last**
/// declared axis varies fastest. With no axes, expands to a single
/// axis-free spec.
pub fn expand(manifest: &Manifest, suite: &str, quick: bool) -> Vec<RunSpec> {
    let axes = &manifest.axes;
    let total: usize = axes.iter().map(|(_, vs)| vs.len()).product();
    let mut specs = Vec::with_capacity(total);
    for perm in 0..total {
        // Decode the odometer: last axis varies fastest.
        let mut coords: Vec<usize> = vec![0; axes.len()];
        let mut rest = perm;
        for (slot, (_, values)) in axes.iter().enumerate().rev() {
            coords[slot] = rest % values.len();
            rest /= values.len();
        }

        let mut label_parts: Vec<String> = Vec::with_capacity(axes.len());
        let mut key_parts: Vec<String> = Vec::new();
        let mut params: Vec<(String, ManifestValue)> = Vec::new();
        for (slot, (axis, values)) in axes.iter().enumerate() {
            let value = &values[coords[slot]];
            label_parts.push(format!("{axis}={}", value.canonical()));
            if coords[slot] != 0 {
                key_parts.push(format!("{axis}={}", value.canonical()));
            }
            params.push((axis.clone(), value.clone()));
        }
        key_parts.sort();
        let seed_key = key_parts.join(",");
        for (knob, value) in &manifest.knobs {
            if !params.iter().any(|(k, _)| k == knob) {
                params.push((knob.clone(), value.clone()));
            }
        }
        specs.push(RunSpec {
            suite: suite.to_string(),
            index: perm,
            label: label_parts.join(","),
            seed: derive_seed(manifest.seed, suite, &seed_key),
            seed_key,
            params,
            quick,
        });
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(text: &str) -> Manifest {
        Manifest::parse(text).expect("manifest")
    }

    const BASE: &str = "[sweep]\nname = \"t\"\nseed = 42\nsuites = [\"scenario\"]\n\
                        tasks = 100\n[axes]\npool = [40, 80]\nmatcher = [\"react\", \"greedy\"]\n";

    #[test]
    fn expansion_is_odometer_ordered() {
        let specs = expand(&manifest(BASE), "scenario", false);
        assert_eq!(specs.len(), 4);
        let labels: Vec<&str> = specs.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "pool=40,matcher=react",
                "pool=40,matcher=greedy",
                "pool=80,matcher=react",
                "pool=80,matcher=greedy",
            ]
        );
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.usize_param("tasks"), Some(100), "knobs flow into params");
        }
    }

    #[test]
    fn default_coordinates_elide_from_seed_key() {
        let specs = expand(&manifest(BASE), "scenario", false);
        assert_eq!(specs[0].seed_key, "", "all-default run has the empty key");
        assert_eq!(specs[1].seed_key, "matcher=greedy");
        assert_eq!(specs[2].seed_key, "pool=80");
        assert_eq!(specs[3].seed_key, "matcher=greedy,pool=80");
    }

    #[test]
    fn appending_axis_values_preserves_existing_seeds() {
        let before = expand(&manifest(BASE), "scenario", false);
        let extended = BASE.replace("pool = [40, 80]", "pool = [40, 80, 160]");
        let after = expand(&manifest(&extended), "scenario", false);
        assert_eq!(after.len(), 6);
        for b in &before {
            let a = after
                .iter()
                .find(|a| a.label == b.label)
                .expect("existing run survives");
            assert_eq!(a.seed, b.seed, "seed changed for {}", b.label);
        }
    }

    #[test]
    fn adding_a_new_axis_preserves_existing_seeds() {
        let before = expand(&manifest(BASE), "scenario", false);
        let extended = format!("{BASE}faults = [\"none\", \"chaos(0.5)\"]\n");
        let after = expand(&manifest(&extended), "scenario", false);
        assert_eq!(after.len(), 8);
        for b in &before {
            let a = after
                .iter()
                .find(|a| a.label.starts_with(&b.label) && a.label.ends_with("faults=none"))
                .expect("default-faults run survives");
            assert_eq!(a.seed, b.seed, "new axis reseeded {}", b.label);
        }
    }

    #[test]
    fn seeds_are_distinct_across_runs_and_suites() {
        let m = manifest(BASE);
        let specs = expand(&m, "scenario", false);
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), specs.len(), "per-run seeds collide");
        let other = expand(&m, "other-suite", false);
        assert_ne!(
            specs[0].seed, other[0].seed,
            "suite name must enter derivation"
        );
    }

    #[test]
    fn base_seed_shifts_every_run() {
        let m = manifest(BASE);
        let reseeded = manifest(&BASE.replace("seed = 42", "seed = 43"));
        let a = expand(&m, "scenario", false);
        let b = expand(&reseeded, "scenario", false);
        for (x, y) in a.iter().zip(&b) {
            assert_ne!(x.seed, y.seed, "base seed ignored for {}", x.label);
        }
    }

    #[test]
    fn axis_free_manifest_expands_to_one_spec() {
        let m = manifest("[sweep]\nname = \"t\"\nsuites = [\"fig34\"]\n");
        let specs = expand(&m, "fig34", true);
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].label, "");
        assert!(specs[0].quick);
        assert_eq!(specs[0].seed, derive_seed(42, "fig34", ""));
    }
}
