//! # react-experiments — declarative experiment orchestration
//!
//! One API for every experiment suite in the repo: an [`Experiment`]
//! expands (from a sweep [`Manifest`] or its intrinsic cell list) into a
//! deterministic list of [`RunSpec`]s, each run produces [`KpiRow`]s,
//! and the generic [`sweep`] driver fans the specs out across cores,
//! aggregates everything into one [`KpiReport`], and writes
//! provenance-stamped JSON-lines + CSV artifacts plus a terminal
//! summary table.
//!
//! Determinism contract: every run's seed is derived solely from the
//! manifest base seed, the suite name and the run's default-elided axis
//! coordinates ([`spec::derive_seed`]) — so the same manifest always
//! reproduces byte-identical reports, serial or parallel, and extending
//! a manifest with new axis values or whole new axes never reseeds the
//! runs that already existed.
//!
//! [`KpiRow`]: react_metrics::KpiRow
//! [`KpiReport`]: react_metrics::KpiReport

pub mod executor;
pub mod experiment;
pub mod legacy;
pub mod load;
pub mod manifest;
pub mod scenario;
pub mod spec;
pub mod sweep;

pub use executor::run_indexed;
pub use experiment::{ExpandCtx, Experiment};
pub use load::LoadSuite;
pub use manifest::{Manifest, ManifestError, ManifestValue};
pub use scenario::ScenarioSweep;
pub use spec::{derive_seed, expand, RunSpec};
pub use sweep::{registry, run_suites, suite, SweepOptions, SweepOutcome};
