//! The generic sweep driver: expand → fan out → aggregate → stamp.
//!
//! This is the code every suite used to duplicate: walking its own
//! config grid, collecting its own report struct, rendering its own
//! table and CSV. Under the [`Experiment`] API the driver does it once —
//! it expands each suite into [`RunSpec`]s, fans the specs out across
//! cores with [`run_indexed`] (pinned to one job for wall-clock suites),
//! prefixes every returned [`KpiRow`] with the `suite` / `run` / `seed`
//! identity columns, and aggregates one provenance-stamped [`KpiReport`]
//! written as JSON-lines + CSV.
//!
//! Determinism: specs are run in expansion order and results are
//! re-ordered by index, so serial and parallel execution produce
//! byte-identical reports.

use std::path::PathBuf;

use react_bench::report::OutputSink;
use react_metrics::csv::to_csv_string;
use react_metrics::{write_stamped, ArtifactOutcome, KpiReport, KpiRow, Provenance};

use crate::executor::run_indexed;
use crate::experiment::{ExpandCtx, Experiment};
use crate::legacy::legacy_suites;
use crate::load::LoadSuite;
use crate::manifest::Manifest;
use crate::scenario::ScenarioSweep;

/// Driver knobs, shared by every CLI entry point.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Reduced sizes — seconds instead of minutes.
    pub quick: bool,
    /// Base seed when no manifest supplies one.
    pub seed: u64,
    /// Worker cap for parallel-safe suites (`None` = all cores).
    pub jobs: Option<usize>,
    /// Force single-threaded execution for every suite.
    pub serial: bool,
    /// Where the aggregated `.kpi.jsonl` / `.kpi.csv` artifacts land
    /// (`None` = stdout tables only).
    pub out_dir: Option<PathBuf>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            quick: false,
            seed: 42,
            jobs: None,
            serial: false,
            out_dir: None,
        }
    }
}

/// Everything a sweep produced.
pub struct SweepOutcome {
    /// The aggregated, provenance-stamped report across all suites.
    pub report: KpiReport,
    /// Number of runs executed.
    pub total_runs: usize,
    /// Artifacts written (path, created/unchanged/backed-up).
    pub artifacts: Vec<(PathBuf, ArtifactOutcome)>,
    /// One rendered summary table per suite, in suite order.
    pub tables: Vec<String>,
}

/// Every registered suite: the manifest-driven `scenario` sweep, the
/// nine legacy figure suites and the live-ingest `load` suite, sharing
/// one output sink.
pub fn registry(sink: &OutputSink, observe: bool) -> Vec<Box<dyn Experiment>> {
    let mut suites: Vec<Box<dyn Experiment>> = vec![Box::new(ScenarioSweep)];
    suites.extend(legacy_suites(sink, observe));
    suites.push(Box::new(LoadSuite::new(sink.clone())));
    suites
}

/// Resolves a CLI command or manifest `suites` entry — including the
/// historical figure aliases — to the canonical suite name.
pub fn suite(name: &str) -> Option<&'static str> {
    Some(match name {
        "fig3" | "fig4" | "fig34" => "fig34",
        "fig5" | "fig6" | "fig7" | "fig8" | "fig5-8" | "endtoend" => "endtoend",
        "fig9" | "fig10" | "fig9-10" | "scalability" => "scalability",
        "regions" => "regions",
        "hotpath" => "hotpath",
        "case" => "case",
        "ablation" => "ablation",
        "chaos" => "chaos",
        "cluster" => "cluster",
        "scenario" => "scenario",
        "load" => "load",
        _ => return None,
    })
}

/// The provenance stamp a sweep's artifacts carry.
fn provenance_for(base_seed: u64, manifest: Option<&Manifest>) -> Provenance {
    let mut p = Provenance::new(base_seed);
    if let Some(m) = manifest {
        p = p.with_manifest_hash(m.hash);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    p.with_git_revision_from(&cwd)
}

/// Expands, runs and aggregates `suites` into one [`SweepOutcome`].
///
/// The base seed is the manifest's when one is given, else
/// `opts.seed` — so `sweep manifest.toml` reproduces regardless of CLI
/// defaults. Suites whose cells measure wall clock
/// (`parallel_safe() == false`) are pinned to one job; everything else
/// fans out across `opts.jobs` (default: all cores).
pub fn run_suites(
    suites: &[&dyn Experiment],
    manifest: Option<&Manifest>,
    opts: &SweepOptions,
) -> Result<SweepOutcome, String> {
    let base_seed = manifest.map(|m| m.seed).unwrap_or(opts.seed);
    let ctx = ExpandCtx {
        quick: opts.quick,
        seed: base_seed,
        manifest,
    };
    let provenance = provenance_for(base_seed, manifest);
    let mut report = KpiReport::new().with_provenance(provenance.clone());
    let mut tables = Vec::new();
    let mut total_runs = 0usize;

    for suite in suites {
        let specs = suite.expand(&ctx)?;
        total_runs += specs.len();
        let jobs = if opts.serial || !suite.parallel_safe() {
            Some(1)
        } else {
            opts.jobs
        };
        let results = run_indexed(specs.len(), jobs, |i| suite.run(&specs[i]));
        let mut suite_report = KpiReport::new();
        for (spec, result) in specs.iter().zip(results) {
            let rows = result.map_err(|e| {
                format!(
                    "suite `{}` run {} ({}): {e}",
                    suite.name(),
                    spec.index,
                    spec.label
                )
            })?;
            for row in rows {
                let mut full = KpiRow::new()
                    .label("suite", spec.suite.clone())
                    .label(
                        "run",
                        if spec.label.is_empty() {
                            spec.index.to_string()
                        } else {
                            spec.label.clone()
                        },
                    )
                    .label("seed", format!("{:#018x}", spec.seed));
                for (name, value) in row.cells() {
                    full.set(name, value.clone());
                }
                suite_report.push(full.clone());
                report.push(full);
            }
        }
        let columns = suite.table_columns();
        tables.push(
            suite_report
                .table(suite.title(), columns.as_deref())
                .render(),
        );
    }

    let mut artifacts = Vec::new();
    if let Some(dir) = &opts.out_dir {
        let name = manifest.map(|m| m.name.as_str()).unwrap_or("experiments");
        let jsonl_path = dir.join(format!("{name}.kpi.jsonl"));
        let outcome = write_stamped(&jsonl_path, &report.to_jsonl())
            .map_err(|e| format!("could not write {}: {e}", jsonl_path.display()))?;
        artifacts.push((jsonl_path, outcome));

        let csv_path = dir.join(format!("{name}.kpi.csv"));
        let csv = format!(
            "{}\n{}",
            provenance.comment_line(),
            to_csv_string(&report.to_csv_rows(None))
        );
        let outcome = write_stamped(&csv_path, &csv)
            .map_err(|e| format!("could not write {}: {e}", csv_path.display()))?;
        artifacts.push((csv_path, outcome));
    }

    Ok(SweepOutcome {
        report,
        total_runs,
        artifacts,
        tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{derive_seed, RunSpec};

    /// A deterministic sim-only suite for driver tests.
    struct Counting {
        cells: usize,
    }

    impl Experiment for Counting {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn title(&self) -> &'static str {
            "Counting — driver test suite"
        }
        fn expand(&self, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String> {
            Ok((0..self.cells)
                .map(|i| RunSpec {
                    suite: "counting".to_string(),
                    index: i,
                    label: format!("cell={i}"),
                    seed_key: format!("cell={i}"),
                    params: Vec::new(),
                    seed: derive_seed(ctx.seed, "counting", &format!("cell={i}")),
                    quick: ctx.quick,
                })
                .collect())
        }
        fn run(&self, spec: &RunSpec) -> Result<Vec<KpiRow>, String> {
            Ok(vec![KpiRow::new()
                .int("cell", spec.index as i64)
                .int("seed_lo", (spec.seed & 0xffff) as i64)])
        }
    }

    #[test]
    fn serial_and_parallel_reports_are_byte_identical() {
        let suite = Counting { cells: 9 };
        let suites: Vec<&dyn Experiment> = vec![&suite];
        let serial = run_suites(
            &suites,
            None,
            &SweepOptions {
                serial: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        let parallel = run_suites(
            &suites,
            None,
            &SweepOptions {
                jobs: Some(4),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(serial.report.to_jsonl(), parallel.report.to_jsonl());
        assert_eq!(serial.total_runs, 9);
    }

    #[test]
    fn rows_carry_suite_run_seed_identity_columns() {
        let suite = Counting { cells: 2 };
        let suites: Vec<&dyn Experiment> = vec![&suite];
        let outcome = run_suites(&suites, None, &SweepOptions::default()).unwrap();
        let cols = outcome.report.columns();
        assert_eq!(&cols[..3], &["suite", "run", "seed"]);
        let jsonl = outcome.report.to_jsonl();
        assert!(jsonl.contains("\"run\":\"cell=0\""), "{jsonl}");
        assert!(jsonl.contains("\"suite\":\"counting\""), "{jsonl}");
    }

    #[test]
    fn registry_lists_scenario_the_nine_legacy_suites_then_load() {
        let sink = OutputSink::discard();
        let names: Vec<&str> = registry(&sink, false).iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "scenario",
                "fig34",
                "endtoend",
                "scalability",
                "regions",
                "hotpath",
                "case",
                "ablation",
                "chaos",
                "cluster",
                "load",
            ]
        );
    }

    #[test]
    fn aliases_resolve_to_canonical_names() {
        assert_eq!(suite("fig3"), Some("fig34"));
        assert_eq!(suite("fig7"), Some("endtoend"));
        assert_eq!(suite("fig9"), Some("scalability"));
        assert_eq!(suite("scenario"), Some("scenario"));
        assert_eq!(suite("nope"), None);
    }

    #[test]
    fn artifacts_are_stamped_and_not_silently_overwritten() {
        let dir = std::env::temp_dir().join("react_experiments_sweep_test");
        let _ = std::fs::remove_dir_all(&dir);
        let suite = Counting { cells: 3 };
        let suites: Vec<&dyn Experiment> = vec![&suite];
        let opts = SweepOptions {
            out_dir: Some(dir.clone()),
            ..SweepOptions::default()
        };
        let first = run_suites(&suites, None, &opts).unwrap();
        assert_eq!(first.artifacts.len(), 2);
        assert!(matches!(first.artifacts[0].1, ArtifactOutcome::Created));
        let jsonl = std::fs::read_to_string(&first.artifacts[0].0).unwrap();
        assert!(jsonl.starts_with("{\"provenance\":{\"seed\":42"), "{jsonl}");

        // Identical rerun: byte-identical artifact, no backup.
        let second = run_suites(&suites, None, &opts).unwrap();
        assert!(matches!(second.artifacts[0].1, ArtifactOutcome::Unchanged));

        // A differing run backs the old artifact up instead of clobbering.
        let third = run_suites(
            &suites,
            None,
            &SweepOptions {
                seed: 7,
                ..opts.clone()
            },
        )
        .unwrap();
        assert!(matches!(third.artifacts[0].1, ArtifactOutcome::BackedUp(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
