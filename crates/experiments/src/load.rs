//! The `load` suite: open-loop TCP replay through the live ingest door.
//!
//! Unlike the sim-time suites this one exercises the real wire
//! boundary — `react-load` self-hosts an
//! [`react_runtime::IngestRuntime`](../../runtime), replays a seeded
//! arrival trace over sockets and reports sustained throughput,
//! p50/p99/p999 assignment latency and the door shed rate into
//! `BENCH_load.json`.
//!
//! Manifest-driven when axes are given (`shape`, plus the `rate` /
//! `tasks` / `scale` / `workers` knobs); otherwise it expands to its
//! intrinsic two-cell list: one Poisson cell and one bursty cell.
//! Wall-clock suite → `parallel_safe() == false`.

use react_bench::report::OutputSink;
use react_load::{LoadParams, LoadRunReport, Shape};
use react_metrics::KpiRow;
use std::sync::Mutex;

use crate::experiment::{ExpandCtx, Experiment};
use crate::spec::{derive_seed, expand, RunSpec};

/// The load suite (see module docs).
pub struct LoadSuite {
    sink: OutputSink,
    /// Reports collected across this sweep's cells; the artifact is
    /// written once, when the last expected cell lands (cells run
    /// serially — the suite is not parallel-safe).
    collected: Mutex<Vec<LoadRunReport>>,
    expected: Mutex<usize>,
}

impl LoadSuite {
    /// Creates the suite against the shared output sink.
    pub fn new(sink: OutputSink) -> Self {
        LoadSuite {
            sink,
            collected: Mutex::new(Vec::new()),
            expected: Mutex::new(0),
        }
    }
}

/// Resolves one spec's [`LoadParams`] (quick/default base + overrides).
fn build_params(spec: &RunSpec) -> Result<LoadParams, String> {
    let mut params = if spec.quick {
        LoadParams::quick()
    } else {
        LoadParams::default()
    };
    params.seed = spec.seed;
    if let Some(shape) = spec.str_param("shape") {
        params.shape = Shape::parse(shape).ok_or_else(|| format!("unknown shape `{shape}`"))?;
    }
    if let Some(rate) = spec.f64_param("rate") {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(format!("rate must be positive, got {rate}"));
        }
        params.rate = rate;
    }
    if let Some(tasks) = spec.usize_param("tasks") {
        params.tasks = tasks;
    }
    if let Some(scale) = spec.f64_param("scale") {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(format!("scale must be positive, got {scale}"));
        }
        params.time_scale = scale;
    }
    if let Some(workers) = spec.usize_param("workers") {
        params.n_workers = workers;
    }
    if let Some(queue) = spec.usize_param("queue") {
        params.queue_capacity = queue;
    }
    if let Some(watermark) = spec.usize_param("watermark") {
        params.backlog_watermark = watermark;
    }
    Ok(params)
}

impl Experiment for LoadSuite {
    fn name(&self) -> &'static str {
        "load"
    }

    fn title(&self) -> &'static str {
        "Load — open-loop TCP replay through the ingest door (BENCH_load.json)"
    }

    fn expand(&self, ctx: &ExpandCtx) -> Result<Vec<RunSpec>, String> {
        let specs = match ctx.manifest {
            Some(manifest) if !manifest.axes.is_empty() => expand(manifest, self.name(), ctx.quick),
            _ => {
                // Intrinsic two-cell list: Poisson, then bursty.
                ["poisson", "burst"]
                    .iter()
                    .enumerate()
                    .map(|(index, shape)| {
                        let seed_key = if index == 0 {
                            String::new()
                        } else {
                            format!("shape={shape}")
                        };
                        RunSpec {
                            suite: self.name().to_string(),
                            index,
                            label: format!("shape={shape}"),
                            seed: if index == 0 {
                                ctx.seed
                            } else {
                                derive_seed(ctx.seed, self.name(), &seed_key)
                            },
                            seed_key,
                            params: vec![(
                                "shape".to_string(),
                                crate::manifest::ManifestValue::Str(shape.to_string()),
                            )],
                            quick: ctx.quick,
                        }
                    })
                    .collect()
            }
        };
        // Validate every cell eagerly — a sweep must fail before its
        // first run, not in the middle of a fan-out.
        for spec in &specs {
            build_params(spec).map_err(|e| format!("run '{}': {e}", spec.label))?;
        }
        *self.expected.lock().expect("expected count lock") = specs.len();
        self.collected.lock().expect("collected lock").clear();
        Ok(specs)
    }

    fn run(&self, spec: &RunSpec) -> Result<Vec<KpiRow>, String> {
        let params = build_params(spec)?;
        let report = react_load::run(&params)
            .map_err(|e| format!("load run '{}' failed: {e}", spec.label))?;
        println!("{}", react_load::render(std::slice::from_ref(&report)));
        if !report.conserved {
            return Err(format!(
                "run '{}' violated the conservation identity",
                spec.label
            ));
        }
        let rows = react_load::kpi_rows(std::slice::from_ref(&report));
        let mut collected = self.collected.lock().expect("collected lock");
        collected.push(report);
        // Last expected cell: write the aggregated artifact once.
        if collected.len() == *self.expected.lock().expect("expected count lock") {
            let path = react_load::default_json_path();
            let provenance = self
                .sink
                .provenance()
                .cloned()
                .unwrap_or_else(|| react_metrics::Provenance::new(spec.seed));
            match react_load::write_json_stamped(&collected, &path, &provenance) {
                Ok(_) => println!("# JSON → {}", path.display()),
                Err(e) => eprintln!("# failed to write {}: {e}", path.display()),
            }
        }
        Ok(rows)
    }

    fn parallel_safe(&self) -> bool {
        false
    }

    fn table_columns(&self) -> Option<Vec<&'static str>> {
        Some(vec![
            "suite",
            "run",
            "offered",
            "accepted",
            "shed_door",
            "offered_per_hour",
            "p50_assign",
            "p99_assign",
            "p999_assign",
            "shed_rate",
            "conserved",
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;

    fn ctx(seed: u64) -> ExpandCtx<'static> {
        ExpandCtx {
            quick: true,
            seed,
            manifest: None,
        }
    }

    #[test]
    fn intrinsic_expansion_is_poisson_then_burst() {
        let suite = LoadSuite::new(OutputSink::discard());
        let specs = suite.expand(&ctx(99)).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].label, "shape=poisson");
        assert_eq!(specs[1].label, "shape=burst");
        assert_eq!(specs[0].seed, 99, "default cell takes the base seed");
        assert_ne!(specs[1].seed, 99, "burst cell derives its own seed");
        assert!(specs.iter().all(|s| s.quick));
        assert!(!suite.parallel_safe(), "wall-clock suite must be pinned");
    }

    #[test]
    fn manifest_axes_drive_expansion_and_knobs_flow_through() {
        let manifest = Manifest::parse(
            "[sweep]\nname = \"load-test\"\nseed = 7\nsuites = [\"load\"]\n\
             tasks = 500\nscale = 120\n\
             [axes]\nshape = [\"poisson\", \"burst\"]\nrate = [4.0, 9.375]\n",
        )
        .unwrap();
        let suite = LoadSuite::new(OutputSink::discard());
        let specs = suite
            .expand(&ExpandCtx {
                quick: true,
                seed: manifest.seed,
                manifest: Some(&manifest),
            })
            .unwrap();
        assert_eq!(specs.len(), 4);
        let params = build_params(&specs[0]).unwrap();
        assert_eq!(params.tasks, 500);
        assert!((params.time_scale - 120.0).abs() < 1e-12);
        assert!((params.rate - 4.0).abs() < 1e-12);
        assert_eq!(params.shape, Shape::Poisson);
    }

    #[test]
    fn unknown_shape_fails_at_expand_time() {
        let manifest = Manifest::parse(
            "[sweep]\nname = \"bad\"\nsuites = [\"load\"]\n\
             [axes]\nshape = [\"sawtooth\"]\n",
        )
        .unwrap();
        let suite = LoadSuite::new(OutputSink::discard());
        let err = suite
            .expand(&ExpandCtx {
                quick: true,
                seed: 1,
                manifest: Some(&manifest),
            })
            .unwrap_err();
        assert!(err.contains("unknown shape"), "{err}");
    }

    #[test]
    fn bad_rate_fails_at_expand_time() {
        let manifest = Manifest::parse(
            "[sweep]\nname = \"bad\"\nsuites = [\"load\"]\n\
             [axes]\nrate = [-2.0]\n",
        )
        .unwrap();
        let suite = LoadSuite::new(OutputSink::discard());
        let err = suite
            .expand(&ExpandCtx {
                quick: true,
                seed: 1,
                manifest: Some(&manifest),
            })
            .unwrap_err();
        assert!(err.contains("rate must be positive"), "{err}");
    }
}
