//! Golden test: the committed `examples/sweep_quick.toml` expands to a
//! pinned run grid. If this fails, either the example manifest changed
//! (update the pins) or a change reseeded existing runs — which breaks
//! the append-only determinism contract and is a bug.

use std::path::Path;

use react_experiments::{expand, Manifest};

fn quick_manifest_text() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/sweep_quick.toml");
    std::fs::read_to_string(&path).expect("read examples/sweep_quick.toml")
}

/// The full grid, odometer order (last axis fastest): every label with
/// its derived seed.
const GOLDEN: &[(&str, u64)] = &[
    (
        "pool=40,matcher=react,cycles=200,faults=none",
        0x3c3efead798711b4,
    ),
    (
        "pool=40,matcher=react,cycles=200,faults=chaos(0.5)",
        0xa8b0035b13093f32,
    ),
    (
        "pool=40,matcher=react,cycles=1000,faults=none",
        0xce3f3613a4a04d24,
    ),
    (
        "pool=40,matcher=react,cycles=1000,faults=chaos(0.5)",
        0xb5efbba3cb8edbd0,
    ),
    (
        "pool=40,matcher=greedy,cycles=200,faults=none",
        0x0cde007c85a96034,
    ),
    (
        "pool=40,matcher=greedy,cycles=200,faults=chaos(0.5)",
        0xd35eb2f3c9403987,
    ),
    (
        "pool=40,matcher=greedy,cycles=1000,faults=none",
        0xe26cb124a208d873,
    ),
    (
        "pool=40,matcher=greedy,cycles=1000,faults=chaos(0.5)",
        0x934b2f1ae52884fc,
    ),
    (
        "pool=40,matcher=traditional,cycles=200,faults=none",
        0x25f2748ce8354c8b,
    ),
    (
        "pool=40,matcher=traditional,cycles=200,faults=chaos(0.5)",
        0x94b5cd9545f8c3d2,
    ),
    (
        "pool=40,matcher=traditional,cycles=1000,faults=none",
        0x03aa3f0dabcfc8e7,
    ),
    (
        "pool=40,matcher=traditional,cycles=1000,faults=chaos(0.5)",
        0xe93997f2cf42ec07,
    ),
    (
        "pool=80,matcher=react,cycles=200,faults=none",
        0x8098440f185e32c1,
    ),
    (
        "pool=80,matcher=react,cycles=200,faults=chaos(0.5)",
        0x31f9c05630a9fb3e,
    ),
    (
        "pool=80,matcher=react,cycles=1000,faults=none",
        0x0746ad0e1c1d2165,
    ),
    (
        "pool=80,matcher=react,cycles=1000,faults=chaos(0.5)",
        0x5ce8f34e799fd93c,
    ),
    (
        "pool=80,matcher=greedy,cycles=200,faults=none",
        0xdca3ac56b65d69fe,
    ),
    (
        "pool=80,matcher=greedy,cycles=200,faults=chaos(0.5)",
        0x8d7bea172ecfc347,
    ),
    (
        "pool=80,matcher=greedy,cycles=1000,faults=none",
        0x36892b9bd37fe8ac,
    ),
    (
        "pool=80,matcher=greedy,cycles=1000,faults=chaos(0.5)",
        0x6d546a0ae3757a15,
    ),
    (
        "pool=80,matcher=traditional,cycles=200,faults=none",
        0x6b15543374b92b79,
    ),
    (
        "pool=80,matcher=traditional,cycles=200,faults=chaos(0.5)",
        0xd6f5b95a54aea38a,
    ),
    (
        "pool=80,matcher=traditional,cycles=1000,faults=none",
        0x72db0eb3bb2846ed,
    ),
    (
        "pool=80,matcher=traditional,cycles=1000,faults=chaos(0.5)",
        0x0e4ef12e71469b2e,
    ),
];

#[test]
fn sweep_quick_expands_to_the_pinned_grid() {
    let manifest = Manifest::parse(&quick_manifest_text()).expect("parse sweep_quick.toml");
    assert_eq!(manifest.seed, 42);
    assert_eq!(
        manifest.permutations(),
        24,
        "ISSUE floor: ≥ 24 permutations"
    );
    let specs = expand(&manifest, "scenario", false);
    assert_eq!(specs.len(), GOLDEN.len());
    for (i, (spec, (label, seed))) in specs.iter().zip(GOLDEN).enumerate() {
        assert_eq!(spec.index, i);
        assert_eq!(&spec.label, label, "run {i} label");
        assert_eq!(spec.seed, *seed, "run {i} ({label}) was reseeded");
        assert_eq!(&spec.suite, "scenario");
    }
    // The all-defaults cell elides every coordinate from its seed key.
    assert_eq!(specs[0].seed_key, "");
}

#[test]
fn appending_an_axis_value_never_reseeds_existing_runs() {
    let grown = quick_manifest_text().replace("pool = [40, 80]", "pool = [40, 80, 160]");
    let manifest = Manifest::parse(&grown).expect("parse grown manifest");
    let specs = expand(&manifest, "scenario", false);
    assert_eq!(specs.len(), 36);
    // The original 24 cells keep their exact seeds (they now sit at
    // different indices, so match by label).
    for (label, seed) in GOLDEN {
        let spec = specs
            .iter()
            .find(|s| &s.label == label)
            .unwrap_or_else(|| panic!("cell {label} vanished"));
        assert_eq!(spec.seed, *seed, "cell {label} was reseeded by axis growth");
    }
}

#[test]
fn adding_a_whole_new_axis_never_reseeds_existing_runs() {
    let grown = format!("{}shards = [1, 2]\n", quick_manifest_text());
    let manifest = Manifest::parse(&grown).expect("parse grown manifest");
    let specs = expand(&manifest, "scenario", false);
    assert_eq!(specs.len(), 48);
    // shards=1 (the new axis default) cells are the original grid.
    for (label, seed) in GOLDEN {
        let grown_label = format!("{label},shards=1");
        let spec = specs
            .iter()
            .find(|s| s.label == grown_label)
            .unwrap_or_else(|| panic!("cell {grown_label} vanished"));
        assert_eq!(spec.seed, *seed, "cell {label} was reseeded by a new axis");
    }
}
