//! Property test: for any small scenario manifest, the serial and
//! parallel fan-outs of the sweep driver produce byte-identical KPI
//! reports. This is the determinism half of the ISSUE acceptance — the
//! executor's thread placement must never leak into results.

use proptest::prelude::*;

use react_experiments::{run_suites, Experiment, Manifest, ScenarioSweep, SweepOptions};

fn manifest_text(
    seed: u64,
    pools: &[u32],
    matchers: &[&str],
    shards: &[u32],
    tasks: u32,
) -> String {
    let quote = |xs: &[&str]| {
        xs.iter()
            .map(|m| format!("\"{m}\""))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let ints = |xs: &[u32]| {
        xs.iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "[sweep]\nname = \"prop\"\nseed = {seed}\nsuites = [\"scenario\"]\ntasks = {tasks}\n\
         [axes]\npool = [{}]\nmatcher = [{}]\nshards = [{}]\n",
        ints(pools),
        quote(matchers),
        ints(shards),
    )
}

fn jsonl_for(manifest: &Manifest, serial: bool) -> String {
    let scenario = ScenarioSweep;
    let suites: Vec<&dyn Experiment> = vec![&scenario];
    let opts = SweepOptions {
        quick: true,
        serial,
        jobs: if serial { None } else { Some(4) },
        ..SweepOptions::default()
    };
    run_suites(&suites, Some(manifest), &opts)
        .expect("sweep")
        .report
        .to_jsonl()
}

proptest! {
    // Each case runs every cell twice (serial + 4-way parallel); keep
    // the case count small and the scenarios tiny.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn serial_and_parallel_fanout_reports_are_byte_identical(
        seed in 0u64..10_000,
        pool_mask in 1u8..4,       // non-empty subset of [6, 10]
        matcher_mask in 1u8..8,    // non-empty subset of the matcher list
        both_shards in 0u8..2,
        tasks in 10u32..30,
    ) {
        let pools: Vec<u32> = [6u32, 10]
            .iter()
            .enumerate()
            .filter(|(i, _)| pool_mask & (1 << i) != 0)
            .map(|(_, p)| *p)
            .collect();
        let matchers: Vec<&str> = ["react", "greedy", "traditional"]
            .iter()
            .enumerate()
            .filter(|(i, _)| matcher_mask & (1 << i) != 0)
            .map(|(_, m)| *m)
            .collect();
        let shards: Vec<u32> = if both_shards == 1 { vec![1, 2] } else { vec![1] };
        let text = manifest_text(seed, &pools, &matchers, &shards, tasks);
        let manifest = Manifest::parse(&text).expect("parse");
        let serial = jsonl_for(&manifest, true);
        let parallel = jsonl_for(&manifest, false);
        prop_assert!(
            serial.lines().count() > pools.len() * matchers.len() * shards.len(),
            "report must carry one line per run plus the provenance header"
        );
        prop_assert_eq!(serial, parallel);
    }
}
