//! # react-faults — deterministic fault injection for chaos runs
//!
//! REACT's dynamic-reassignment machinery exists because crowd workers
//! stall, disappear and drop responses mid-flight, yet the healthy-crowd
//! scenarios never exercise those paths. This crate provides the missing
//! regime: a declarative [`FaultPlan`] describing *which* faults to
//! inject (worker dropout/rejoin, straggler slowdowns, silent task
//! abandonment, completion-message loss/duplication, burst arrivals) and
//! a materialised [`FaultSchedule`] that answers *when and to whom* they
//! happen.
//!
//! Two properties make chaos runs bit-reproducible from a single seed:
//!
//! 1. **Up-front materialisation** — everything that can be drawn before
//!    the run starts (dropout instants, per-worker slowdown factors,
//!    burst times) is drawn from dedicated `react-sim` named RNG streams
//!    (`fault.*`) in [`FaultPlan::materialize`], so the fault timeline is
//!    fixed before the first event fires and identical across serial and
//!    parallel execution.
//! 2. **Order-independent per-event decisions** — faults that depend on
//!    runtime state (does *this* assignment get abandoned? is *this*
//!    completion message lost?) cannot be pre-drawn because the number of
//!    assignments is unknown up front. They are instead pure hash
//!    functions of `(salt, fault kind, task id, attempt)`, so the answer
//!    does not depend on the order in which the embedding asks — the DES
//!    in `react-crowd` and the live threaded runtime in `react-runtime`
//!    replay the exact same faults from the same plan.

#![warn(missing_docs)]

pub mod plan;
pub mod schedule;

pub use plan::{BurstPlan, DropoutPlan, FaultPlan, StragglerPlan};
pub use schedule::{Dropout, FaultSchedule};
