//! The declarative [`FaultPlan`] and its materialisation into a
//! [`FaultSchedule`](crate::FaultSchedule).

use std::fmt;

use rand::{Rng, RngCore};
use react_sim::RngStreams;

use crate::schedule::{Dropout, FaultSchedule};

/// Worker dropout/rejoin faults: each worker independently drops offline
/// at most once, at a uniformly drawn instant inside the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropoutPlan {
    /// Per-worker probability of suffering a dropout at all.
    pub probability: f64,
    /// Time window `(lo, hi)` the dropout instant is drawn from.
    pub window: (f64, f64),
    /// Offline duration range `(lo, hi)` before the worker rejoins;
    /// `None` means the dropout is permanent.
    pub offline_range: Option<(f64, f64)>,
}

/// Straggler faults: a fraction of workers execute every task slower by
/// a per-worker factor drawn once at materialisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerPlan {
    /// Fraction of the worker population affected, in `[0, 1]`.
    pub fraction: f64,
    /// Slowdown factor range `(lo, hi)`; factors are multiplicative on
    /// execution time, so `lo >= 1.0`.
    pub factor_range: (f64, f64),
}

/// Burst arrival faults: extra task waves injected on top of the
/// scenario's nominal workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstPlan {
    /// Number of bursts to inject.
    pub count: u32,
    /// Tasks per burst.
    pub size: u32,
    /// Time window `(lo, hi)` each burst instant is drawn from.
    pub window: (f64, f64),
}

/// A declarative schedule of injectable faults. All knobs default to
/// "off"; [`FaultPlan::chaos`] scales every fault family with a single
/// intensity dial for sweep-style benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Worker dropout/rejoin faults.
    pub dropout: Option<DropoutPlan>,
    /// Straggler slowdown faults.
    pub straggler: Option<StragglerPlan>,
    /// Per-assignment probability that the worker silently abandons the
    /// task (never reports a result; only a recovery timeout frees it).
    pub abandon_probability: f64,
    /// Per-completion probability that the completion message is lost
    /// in flight (the work happened, the server never hears about it).
    pub loss_probability: f64,
    /// Per-completion probability that the completion message is
    /// delivered twice (the server must not double-complete the task).
    pub duplication_probability: f64,
    /// Burst task arrivals.
    pub bursts: Option<BurstPlan>,
}

fn check_prob(name: &str, p: f64) -> Result<(), String> {
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(format!("{name} must be a probability in [0, 1], got {p}"));
    }
    Ok(())
}

fn check_window(name: &str, (lo, hi): (f64, f64)) -> Result<(), String> {
    if !lo.is_finite() || !hi.is_finite() || lo < 0.0 || hi < lo {
        return Err(format!(
            "{name} must be a finite non-negative (lo, hi) window with lo <= hi, got ({lo}, {hi})"
        ));
    }
    Ok(())
}

impl FaultPlan {
    /// A plan that injects nothing. Materialises to a no-op schedule.
    pub fn none() -> Self {
        Self::default()
    }

    /// A preset that scales every fault family with one `intensity` dial
    /// in `[0, 1]` — the axis the `chaos` bench sweeps. Intensity 0 is a
    /// healthy crowd; intensity 1 drops half the workers, slows a third
    /// of them 2–6×, and loses or duplicates a noticeable share of
    /// messages.
    pub fn chaos(intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        FaultPlan {
            dropout: (i > 0.0).then_some(DropoutPlan {
                probability: 0.5 * i,
                window: (5.0, 60.0),
                offline_range: Some((30.0, 90.0)),
            }),
            straggler: (i > 0.0).then_some(StragglerPlan {
                fraction: 0.33 * i,
                factor_range: (2.0, 6.0),
            }),
            abandon_probability: 0.10 * i,
            loss_probability: 0.08 * i,
            duplication_probability: 0.05 * i,
            bursts: (i >= 0.5).then_some(BurstPlan {
                count: 2,
                size: 12,
                window: (10.0, 50.0),
            }),
        }
    }

    /// The dropout-only plan the acceptance comparison runs (REACT vs
    /// Traditional deadline misses under dropout).
    pub fn dropout_only(probability: f64) -> Self {
        FaultPlan {
            dropout: Some(DropoutPlan {
                probability,
                window: (5.0, 60.0),
                offline_range: Some((30.0, 90.0)),
            }),
            ..Self::default()
        }
    }

    /// Whether the plan injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.dropout.is_none()
            && self.straggler.is_none()
            && self.abandon_probability <= 0.0
            && self.loss_probability <= 0.0
            && self.duplication_probability <= 0.0
            && self.bursts.is_none()
    }

    /// Checks the plan for values a run cannot be built from.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(d) = self.dropout {
            check_prob("dropout.probability", d.probability)?;
            check_window("dropout.window", d.window)?;
            if let Some(r) = d.offline_range {
                check_window("dropout.offline_range", r)?;
            }
        }
        if let Some(s) = self.straggler {
            check_prob("straggler.fraction", s.fraction)?;
            let (lo, hi) = s.factor_range;
            if !lo.is_finite() || !hi.is_finite() || lo < 1.0 || hi < lo {
                return Err(format!(
                    "straggler.factor_range must satisfy 1.0 <= lo <= hi, got ({lo}, {hi})"
                ));
            }
        }
        check_prob("abandon_probability", self.abandon_probability)?;
        check_prob("loss_probability", self.loss_probability)?;
        check_prob("duplication_probability", self.duplication_probability)?;
        if let Some(b) = self.bursts {
            check_window("bursts.window", b.window)?;
            if b.count > 0 && b.size == 0 {
                return Err("bursts.size must be at least 1 when count > 0".to_string());
            }
        }
        Ok(())
    }

    /// Draws every pre-drawable fault (dropout instants, slowdown
    /// factors, burst times) from the `fault.*` named streams of
    /// `streams` and freezes the result into a [`FaultSchedule`].
    ///
    /// The schedule depends only on `(master seed, plan, n_workers)` —
    /// not on anything that happens during the run — which is what makes
    /// chaos runs bit-reproducible and serial/parallel identical.
    /// `horizon` widens windows that extend past it is *not* clamped;
    /// events past the run's drain horizon simply never fire.
    ///
    /// # Panics
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn materialize(&self, streams: &RngStreams, n_workers: usize) -> FaultSchedule {
        if let Err(reason) = self.validate() {
            panic!("invalid FaultPlan: {reason}");
        }
        let salt = streams.stream("fault.salt").next_u64();

        let mut dropouts = Vec::new();
        if let Some(d) = self.dropout {
            let mut rng = streams.stream("fault.dropout");
            for worker in 0..n_workers {
                // One gen_bool + (up to) two draws per worker, in worker
                // order: the draw sequence is fixed by (seed, n_workers).
                if !rng.gen_bool(d.probability) {
                    continue;
                }
                let at = sample_window(&mut rng, d.window);
                let rejoin_at = d.offline_range.map(|r| at + sample_window(&mut rng, r));
                dropouts.push(Dropout {
                    worker,
                    at,
                    rejoin_at,
                });
            }
            dropouts.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.worker.cmp(&b.worker)));
        }

        let mut slowdown = vec![1.0; n_workers];
        if let Some(s) = self.straggler {
            let mut rng = streams.stream("fault.straggler");
            for factor in slowdown.iter_mut() {
                if rng.gen_bool(s.fraction) {
                    *factor = sample_window(&mut rng, s.factor_range);
                }
            }
        }

        let mut bursts = Vec::new();
        if let Some(b) = self.bursts {
            let mut rng = streams.stream("fault.burst");
            for _ in 0..b.count {
                bursts.push((sample_window(&mut rng, b.window), b.size));
            }
            bursts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        }

        FaultSchedule::new(
            salt,
            dropouts,
            slowdown,
            self.abandon_probability,
            self.loss_probability,
            self.duplication_probability,
            bursts,
        )
    }
}

/// Canonical manifest form of a plan. [`FaultPlan::from_manifest`]
/// parses exactly this grammar (plus the `chaos(i)` preset), so
/// `FaultPlan::from_manifest(&plan.to_string())` round-trips every
/// valid plan.
impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_noop() {
            return write!(f, "none");
        }
        let mut parts: Vec<String> = Vec::new();
        if let Some(d) = self.dropout {
            let mut s = format!(
                "dropout(p={},window={}..{}",
                d.probability, d.window.0, d.window.1
            );
            if let Some((lo, hi)) = d.offline_range {
                s.push_str(&format!(",offline={lo}..{hi}"));
            }
            s.push(')');
            parts.push(s);
        }
        if let Some(st) = self.straggler {
            parts.push(format!(
                "straggler(f={},factor={}..{})",
                st.fraction, st.factor_range.0, st.factor_range.1
            ));
        }
        if self.abandon_probability > 0.0 {
            parts.push(format!("abandon({})", self.abandon_probability));
        }
        if self.loss_probability > 0.0 {
            parts.push(format!("loss({})", self.loss_probability));
        }
        if self.duplication_probability > 0.0 {
            parts.push(format!("dup({})", self.duplication_probability));
        }
        if let Some(b) = self.bursts {
            parts.push(format!(
                "bursts(n={},size={},window={}..{})",
                b.count, b.size, b.window.0, b.window.1
            ));
        }
        write!(f, "{}", parts.join("+"))
    }
}

impl FaultPlan {
    /// Parses the declarative manifest form of a plan, so chaos axes are
    /// expressible in sweep manifests instead of Rust code.
    ///
    /// Accepted forms:
    /// - `none` — the no-op plan;
    /// - `chaos(I)` — the [`FaultPlan::chaos`] preset at intensity `I`;
    /// - `dropout(P)` — the [`FaultPlan::dropout_only`] preset;
    /// - the canonical compound grammar [`Display`](fmt::Display) emits:
    ///   `+`-joined components out of
    ///   `dropout(p=..,window=lo..hi[,offline=lo..hi])`,
    ///   `straggler(f=..,factor=lo..hi)`, `abandon(p)`, `loss(p)`,
    ///   `dup(p)` and `bursts(n=..,size=..,window=lo..hi)`.
    ///
    /// The parsed plan is [`validate`](FaultPlan::validate)d before it is
    /// returned.
    pub fn from_manifest(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(FaultPlan::none());
        }
        let parts: Vec<&str> = spec.split('+').collect();
        let mut plan = FaultPlan::none();
        for part in parts {
            let (name, args) = split_component(part.trim())?;
            match name {
                "chaos" => {
                    if spec.contains('+') {
                        return Err(
                            "chaos(..) is a preset and cannot be combined with other components"
                                .to_string(),
                        );
                    }
                    let i = parse_f64("chaos intensity", args)?;
                    plan = FaultPlan::chaos(i);
                }
                "dropout" => {
                    if args.contains('=') {
                        let kv = parse_kv(name, args, &["p", "window", "offline"])?;
                        plan.dropout = Some(DropoutPlan {
                            probability: parse_f64("dropout.p", req(name, &kv, "p")?)?,
                            window: parse_range("dropout.window", req(name, &kv, "window")?)?,
                            offline_range: match get(&kv, "offline") {
                                Some(v) => Some(parse_range("dropout.offline", v)?),
                                None => None,
                            },
                        });
                    } else {
                        let p = parse_f64("dropout probability", args)?;
                        plan.dropout = FaultPlan::dropout_only(p).dropout;
                    }
                }
                "straggler" => {
                    let kv = parse_kv(name, args, &["f", "factor"])?;
                    plan.straggler = Some(StragglerPlan {
                        fraction: parse_f64("straggler.f", req(name, &kv, "f")?)?,
                        factor_range: parse_range("straggler.factor", req(name, &kv, "factor")?)?,
                    });
                }
                "abandon" => plan.abandon_probability = parse_f64("abandon", args)?,
                "loss" => plan.loss_probability = parse_f64("loss", args)?,
                "dup" => plan.duplication_probability = parse_f64("dup", args)?,
                "bursts" => {
                    let kv = parse_kv(name, args, &["n", "size", "window"])?;
                    plan.bursts = Some(BurstPlan {
                        count: parse_u32("bursts.n", req(name, &kv, "n")?)?,
                        size: parse_u32("bursts.size", req(name, &kv, "size")?)?,
                        window: parse_range("bursts.window", req(name, &kv, "window")?)?,
                    });
                }
                other => {
                    return Err(format!(
                        "unknown fault component '{other}' (expected none, chaos, \
                         dropout, straggler, abandon, loss, dup or bursts)"
                    ))
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

/// Splits `name(args)` into its pieces.
fn split_component(part: &str) -> Result<(&str, &str), String> {
    let Some(open) = part.find('(') else {
        return Err(format!("fault component '{part}' is missing '(…)'"));
    };
    let Some(stripped) = part.strip_suffix(')') else {
        return Err(format!(
            "fault component '{part}' is missing the closing ')'"
        ));
    };
    Ok((part[..open].trim(), &stripped[open + 1..]))
}

/// Parses `k=v` pairs, rejecting unknown keys.
fn parse_kv<'a>(
    component: &str,
    args: &'a str,
    allowed: &[&str],
) -> Result<Vec<(&'a str, &'a str)>, String> {
    let mut out = Vec::new();
    for pair in args.split(',') {
        let Some((k, v)) = pair.split_once('=') else {
            return Err(format!("{component}: expected key=value, got '{pair}'"));
        };
        let k = k.trim();
        if !allowed.contains(&k) {
            return Err(format!(
                "{component}: unknown key '{k}' (expected one of {allowed:?})"
            ));
        }
        out.push((k, v.trim()));
    }
    Ok(out)
}

fn get<'a>(kv: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    kv.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn req<'a>(component: &str, kv: &[(&str, &'a str)], key: &str) -> Result<&'a str, String> {
    get(kv, key).ok_or_else(|| format!("{component}: missing required key '{key}'"))
}

fn parse_f64(what: &str, s: &str) -> Result<f64, String> {
    s.trim()
        .parse::<f64>()
        .map_err(|_| format!("{what}: '{s}' is not a number"))
}

fn parse_u32(what: &str, s: &str) -> Result<u32, String> {
    s.trim()
        .parse::<u32>()
        .map_err(|_| format!("{what}: '{s}' is not a non-negative integer"))
}

fn parse_range(what: &str, s: &str) -> Result<(f64, f64), String> {
    let Some((lo, hi)) = s.split_once("..") else {
        return Err(format!("{what}: expected 'lo..hi', got '{s}'"));
    };
    Ok((parse_f64(what, lo)?, parse_f64(what, hi)?))
}

fn sample_window<R: RngCore>(rng: &mut R, (lo, hi): (f64, f64)) -> f64 {
    if hi > lo {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_noop());
        assert!(p.validate().is_ok());
        let streams = RngStreams::new(7);
        assert!(p.materialize(&streams, 20).is_noop());
    }

    #[test]
    fn chaos_preset_scales_with_intensity() {
        assert!(FaultPlan::chaos(0.0).is_noop() || FaultPlan::chaos(0.0).dropout.is_none());
        let mild = FaultPlan::chaos(0.2);
        let wild = FaultPlan::chaos(1.0);
        assert!(mild.validate().is_ok());
        assert!(wild.validate().is_ok());
        assert!(
            mild.dropout.unwrap().probability < wild.dropout.unwrap().probability,
            "intensity must monotonically raise dropout probability"
        );
        assert!(mild.bursts.is_none() && wild.bursts.is_some());
    }

    #[test]
    fn validate_rejects_degenerate_knobs() {
        let mut p = FaultPlan::none();
        p.abandon_probability = 1.5;
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.straggler = Some(StragglerPlan {
            fraction: 0.5,
            factor_range: (0.5, 2.0), // would speed workers up
        });
        assert!(p.validate().is_err());

        let mut p = FaultPlan::none();
        p.dropout = Some(DropoutPlan {
            probability: 0.3,
            window: (10.0, 5.0),
            offline_range: None,
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn materialize_is_deterministic_per_seed() {
        let plan = FaultPlan::chaos(0.8);
        let a = plan.materialize(&RngStreams::new(42), 50);
        let b = plan.materialize(&RngStreams::new(42), 50);
        assert_eq!(a, b, "same seed must produce an identical schedule");
        let c = plan.materialize(&RngStreams::new(43), 50);
        assert_ne!(a, c, "different seeds should perturb the schedule");
    }

    #[test]
    fn display_round_trips_through_from_manifest() {
        let plans = [
            FaultPlan::none(),
            FaultPlan::chaos(0.3),
            FaultPlan::chaos(0.75),
            FaultPlan::chaos(1.0),
            FaultPlan::dropout_only(0.6),
            FaultPlan {
                dropout: Some(DropoutPlan {
                    probability: 0.25,
                    window: (2.5, 17.0),
                    offline_range: None,
                }),
                straggler: Some(StragglerPlan {
                    fraction: 0.125,
                    factor_range: (1.5, 3.25),
                }),
                abandon_probability: 0.0625,
                loss_probability: 0.03125,
                duplication_probability: 0.015625,
                bursts: Some(BurstPlan {
                    count: 3,
                    size: 7,
                    window: (0.0, 42.5),
                }),
            },
        ];
        for plan in plans {
            let spec = plan.to_string();
            let parsed = FaultPlan::from_manifest(&spec)
                .unwrap_or_else(|e| panic!("'{spec}' failed to parse: {e}"));
            assert_eq!(parsed, plan, "round-trip diverged for '{spec}'");
        }
    }

    #[test]
    fn from_manifest_accepts_presets_and_compounds() {
        assert_eq!(FaultPlan::from_manifest("none"), Ok(FaultPlan::none()));
        assert_eq!(FaultPlan::from_manifest("  "), Ok(FaultPlan::none()));
        assert_eq!(
            FaultPlan::from_manifest("chaos(0.5)"),
            Ok(FaultPlan::chaos(0.5))
        );
        assert_eq!(
            FaultPlan::from_manifest("dropout(0.6)"),
            Ok(FaultPlan::dropout_only(0.6))
        );
        let compound = FaultPlan::from_manifest("abandon(0.1)+loss(0.05)").unwrap();
        assert_eq!(compound.abandon_probability, 0.1);
        assert_eq!(compound.loss_probability, 0.05);
        assert!(compound.dropout.is_none());
    }

    #[test]
    fn from_manifest_rejects_malformed_specs() {
        for bad in [
            "chaotic(0.5)",                   // unknown component
            "dropout",                        // missing (…)
            "dropout(p=0.5",                  // missing )
            "straggler(f=0.5)",               // missing factor range
            "straggler(f=0.5,factor=6..2)",   // invalid range (validate)
            "dropout(q=0.5,window=1..2)",     // unknown key
            "abandon(lots)",                  // not a number
            "chaos(0.5)+abandon(0.1)",        // preset + component
            "bursts(n=2,size=0,window=1..2)", // validate: size 0
            "dropout(p=1.5,window=1..2)",     // validate: probability
        ] {
            assert!(
                FaultPlan::from_manifest(bad).is_err(),
                "'{bad}' should have been rejected"
            );
        }
    }

    #[test]
    fn dropout_instants_fall_inside_the_window() {
        let plan = FaultPlan::dropout_only(1.0);
        let sched = plan.materialize(&RngStreams::new(9), 40);
        assert_eq!(sched.dropouts().len(), 40, "probability 1.0 drops everyone");
        for d in sched.dropouts() {
            assert!(
                (5.0..60.0).contains(&d.at),
                "dropout at {} out of window",
                d.at
            );
            let rejoin = d.rejoin_at.expect("plan schedules rejoin");
            assert!(rejoin > d.at);
        }
        // Sorted by time: materialisation order never leaks run order.
        for w in sched.dropouts().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }
}
