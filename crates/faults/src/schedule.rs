//! The materialised [`FaultSchedule`]: a frozen fault timeline plus
//! order-independent per-event fault decisions.

/// One scheduled worker dropout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dropout {
    /// Index of the worker in the scenario population (`0..n_workers`).
    pub worker: usize,
    /// Simulation time the worker goes offline.
    pub at: f64,
    /// Simulation time the worker comes back, if it ever does.
    pub rejoin_at: Option<f64>,
}

/// A [`FaultPlan`](crate::FaultPlan) materialised against a seed and a
/// worker population: the pre-drawn fault timeline (dropouts, slowdown
/// factors, bursts) plus hash-based per-event decisions for the faults
/// whose occasions are only known at run time.
///
/// Per-event queries ([`abandons`](Self::abandons),
/// [`loses_completion`](Self::loses_completion),
/// [`duplicates_completion`](Self::duplicates_completion)) are pure
/// functions of `(salt, kind, task, attempt)` — the answer never depends
/// on query order, so serial and parallel runs (and the live threaded
/// runtime) replay identical faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    salt: u64,
    dropouts: Vec<Dropout>,
    slowdown: Vec<f64>,
    abandon_p: f64,
    loss_p: f64,
    dup_p: f64,
    bursts: Vec<(f64, u32)>,
}

// Distinct kind constants keep the three per-event decision families
// statistically independent of one another for the same (task, attempt).
const KIND_ABANDON: u64 = 0xA;
const KIND_LOSS: u64 = 0xB;
const KIND_DUP: u64 = 0xC;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes `(salt, kind, a, b)` to a uniform value in `[0, 1)`.
fn decide(salt: u64, kind: u64, a: u64, b: u64) -> f64 {
    let mut h = splitmix64(salt ^ kind.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    h = splitmix64(h ^ a);
    h = splitmix64(h ^ b);
    (h >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
}

impl FaultSchedule {
    pub(crate) fn new(
        salt: u64,
        dropouts: Vec<Dropout>,
        slowdown: Vec<f64>,
        abandon_p: f64,
        loss_p: f64,
        dup_p: f64,
        bursts: Vec<(f64, u32)>,
    ) -> Self {
        FaultSchedule {
            salt,
            dropouts,
            slowdown,
            abandon_p,
            loss_p,
            dup_p,
            bursts,
        }
    }

    /// A schedule that injects nothing, for fault-free runs.
    pub fn none() -> Self {
        FaultSchedule {
            salt: 0,
            dropouts: Vec::new(),
            slowdown: Vec::new(),
            abandon_p: 0.0,
            loss_p: 0.0,
            dup_p: 0.0,
            bursts: Vec::new(),
        }
    }

    /// Whether this schedule injects nothing.
    pub fn is_noop(&self) -> bool {
        self.dropouts.is_empty()
            && self.bursts.is_empty()
            && self.abandon_p <= 0.0
            && self.loss_p <= 0.0
            && self.dup_p <= 0.0
            && self.slowdown.iter().all(|&f| f <= 1.0)
    }

    /// Scheduled dropouts, sorted by time.
    pub fn dropouts(&self) -> &[Dropout] {
        &self.dropouts
    }

    /// Scheduled burst arrivals `(time, size)`, sorted by time.
    pub fn bursts(&self) -> &[(f64, u32)] {
        &self.bursts
    }

    /// Multiplicative execution-time factor for `worker` (1.0 = healthy;
    /// also 1.0 for workers outside the materialised population).
    pub fn slowdown_factor(&self, worker: usize) -> f64 {
        self.slowdown.get(worker).copied().unwrap_or(1.0)
    }

    /// Whether the `attempt`-th assignment of `task` is silently
    /// abandoned by its worker.
    pub fn abandons(&self, task: u64, attempt: u32) -> bool {
        self.abandon_p > 0.0
            && decide(self.salt, KIND_ABANDON, task, attempt as u64) < self.abandon_p
    }

    /// Whether the completion message for the `attempt`-th assignment of
    /// `task` is lost in flight.
    pub fn loses_completion(&self, task: u64, attempt: u32) -> bool {
        self.loss_p > 0.0 && decide(self.salt, KIND_LOSS, task, attempt as u64) < self.loss_p
    }

    /// Whether the completion message for the `attempt`-th assignment of
    /// `task` is delivered twice.
    pub fn duplicates_completion(&self, task: u64, attempt: u32) -> bool {
        self.dup_p > 0.0 && decide(self.salt, KIND_DUP, task, attempt as u64) < self.dup_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probed() -> FaultSchedule {
        FaultSchedule::new(
            0xDEAD_BEEF,
            Vec::new(),
            vec![1.0, 3.0],
            0.3,
            0.3,
            0.3,
            Vec::new(),
        )
    }

    #[test]
    fn none_is_noop() {
        assert!(FaultSchedule::none().is_noop());
        assert!(!probed().is_noop());
    }

    #[test]
    fn decisions_are_stable_and_order_independent() {
        let s = probed();
        let forward: Vec<bool> = (0..64).map(|t| s.abandons(t, 0)).collect();
        let backward: Vec<bool> = (0..64).rev().map(|t| s.abandons(t, 0)).collect();
        let backward: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward, "query order must not matter");
        assert!(
            forward.iter().any(|&b| b),
            "p=0.3 over 64 trials should fire"
        );
        assert!(!forward.iter().all(|&b| b), "p=0.3 must not always fire");
    }

    #[test]
    fn fault_families_are_independent() {
        let s = probed();
        let a: Vec<bool> = (0..256).map(|t| s.abandons(t, 1)).collect();
        let l: Vec<bool> = (0..256).map(|t| s.loses_completion(t, 1)).collect();
        let d: Vec<bool> = (0..256).map(|t| s.duplicates_completion(t, 1)).collect();
        assert_ne!(a, l, "abandon and loss decisions must decorrelate");
        assert_ne!(l, d, "loss and duplication decisions must decorrelate");
    }

    #[test]
    fn attempts_redecide() {
        let s = probed();
        let by_attempt: Vec<bool> = (0..64).map(|k| s.abandons(5, k)).collect();
        assert!(by_attempt.iter().any(|&b| b) && !by_attempt.iter().all(|&b| b));
    }

    #[test]
    fn decision_rates_track_probabilities() {
        let s = FaultSchedule::new(99, Vec::new(), Vec::new(), 0.25, 0.0, 1.0, Vec::new());
        let n = 4000u64;
        let hits = (0..n).filter(|&t| s.abandons(t, 0)).count() as f64 / n as f64;
        assert!((hits - 0.25).abs() < 0.03, "observed abandon rate {hits}");
        assert!(
            (0..n).all(|t| s.duplicates_completion(t, 0)),
            "p=1 always fires"
        );
        assert!((0..n).all(|t| !s.loses_completion(t, 0)), "p=0 never fires");
    }

    #[test]
    fn slowdown_defaults_to_healthy_out_of_range() {
        let s = probed();
        assert_eq!(s.slowdown_factor(1), 3.0);
        assert_eq!(s.slowdown_factor(17), 1.0);
    }
}
