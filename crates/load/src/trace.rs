//! Seeded open-loop arrival traces.
//!
//! A trace is generated **before** the run starts: the client replays
//! it against the ingest door without feedback from responses (open
//! loop), so the offered load is a property of the seed alone. The
//! canonical text rendering ([`trace_text`]) is what the determinism
//! tests hash — same seed, same shape, byte-identical trace.

use react_crowd::TaskGenerator;
use react_geo::BoundingBox;
use react_metrics::fnv1a64;
use react_sim::RngStreams;

/// Arrival-process shape for a generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// Homogeneous Poisson arrivals at the configured rate.
    Poisson,
    /// Poisson base load plus synchronized bursts: every `period` crowd
    /// seconds, `size` extra tasks arrive at the same instant.
    Bursty {
        /// Crowd seconds between bursts.
        period: f64,
        /// Tasks per burst.
        size: usize,
    },
}

impl Shape {
    /// Parses a CLI/manifest shape name.
    pub fn parse(text: &str) -> Option<Shape> {
        match text {
            "poisson" => Some(Shape::Poisson),
            "burst" | "bursty" => Some(Shape::Bursty {
                period: 30.0,
                size: 40,
            }),
            _ => None,
        }
    }

    /// The shape's canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            Shape::Poisson => "poisson",
            Shape::Bursty { .. } => "burst",
        }
    }
}

/// One pre-generated arrival: when it is offered and the submission
/// body's fields. Ids are assigned by the door, not the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Offer instant, crowd seconds from run start.
    pub at: f64,
    /// Soft deadline, crowd seconds.
    pub deadline: f64,
    /// Reward, dollars.
    pub reward: f64,
    /// Task latitude.
    pub lat: f64,
    /// Task longitude.
    pub lon: f64,
    /// Task category.
    pub category: u32,
}

/// The region every trace draws task locations from (the paper's
/// Athens deployment area, as elsewhere in the workspace).
pub fn trace_region() -> BoundingBox {
    BoundingBox::new(37.8, 38.2, 23.5, 24.0).expect("static bounds")
}

/// Generates `n` arrivals of the given shape at `rate` tasks per crowd
/// second, deterministically from `seed`.
pub fn build_trace(shape: Shape, rate: f64, n: usize, seed: u64) -> Vec<TraceEntry> {
    let streams = RngStreams::new(seed);
    let mut rng = streams.stream("load.trace");
    let region = trace_region();
    let mut generator = TaskGenerator::new(rate, region);
    let mut entries: Vec<TraceEntry> = Vec::with_capacity(n);
    match shape {
        Shape::Poisson => {
            while entries.len() < n {
                let (at, task) = generator.next(&mut rng);
                entries.push(entry_from(at, &task));
            }
        }
        Shape::Bursty { period, size } => {
            let mut burst_rng = streams.stream("load.burst");
            let mut burst_gen = TaskGenerator::new(rate, region);
            let mut next_burst = period;
            while entries.len() < n {
                let (at, task) = generator.next(&mut rng);
                while next_burst <= at && entries.len() < n {
                    for _ in 0..size {
                        if entries.len() >= n {
                            break;
                        }
                        // The burst generator's own arrival clock is
                        // discarded: all burst tasks land at the burst
                        // instant.
                        let (_, burst_task) = burst_gen.next(&mut burst_rng);
                        entries.push(entry_from(next_burst, &burst_task));
                    }
                    next_burst += period;
                }
                if entries.len() < n {
                    entries.push(entry_from(at, &task));
                }
            }
            entries.sort_by(|a, b| a.at.total_cmp(&b.at));
        }
    }
    entries
}

fn entry_from(at: f64, task: &react_core::Task) -> TraceEntry {
    TraceEntry {
        at,
        deadline: task.deadline,
        reward: task.reward,
        lat: task.location.lat(),
        lon: task.location.lon(),
        category: task.category.0,
    }
}

/// Canonical text rendering, one arrival per line — the byte-identity
/// surface for determinism tests and the trace fingerprint.
pub fn trace_text(trace: &[TraceEntry]) -> String {
    let mut out = String::with_capacity(trace.len() * 64);
    for e in trace {
        out.push_str(&format!(
            "{:.6} {:.6} {:.6} {:.6} {:.6} {}\n",
            e.at, e.deadline, e.reward, e.lat, e.lon, e.category
        ));
    }
    out
}

/// FNV-1a 64 fingerprint of the canonical rendering.
pub fn trace_hash(trace: &[TraceEntry]) -> u64 {
    fnv1a64(trace_text(trace).as_bytes())
}

/// Upper bound of the trace's time span in crowd seconds (0 when the
/// trace is empty).
pub fn trace_span(trace: &[TraceEntry]) -> f64 {
    trace.last().map_or(0.0, |e| e.at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_sorted_and_sized() {
        let trace = build_trace(Shape::Poisson, 5.0, 200, 42);
        assert_eq!(trace.len(), 200);
        assert!(trace.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(trace
            .iter()
            .all(|e| e.deadline >= 60.0 && e.deadline <= 120.0));
    }

    #[test]
    fn same_seed_same_bytes_different_seed_different_bytes() {
        let a = build_trace(Shape::Poisson, 5.0, 100, 7);
        let b = build_trace(Shape::Poisson, 5.0, 100, 7);
        let c = build_trace(Shape::Poisson, 5.0, 100, 8);
        assert_eq!(trace_text(&a), trace_text(&b));
        assert_eq!(trace_hash(&a), trace_hash(&b));
        assert_ne!(trace_hash(&a), trace_hash(&c));
    }

    #[test]
    fn bursty_trace_has_synchronized_arrivals() {
        let shape = Shape::Bursty {
            period: 10.0,
            size: 5,
        };
        let trace = build_trace(shape, 2.0, 300, 11);
        assert_eq!(trace.len(), 300);
        assert!(trace.windows(2).all(|w| w[0].at <= w[1].at));
        // At least one burst instant carries `size` simultaneous tasks.
        let at_burst = trace.iter().filter(|e| e.at == 10.0).count();
        assert!(at_burst >= 5, "burst at t=10 has {at_burst} tasks");
    }

    #[test]
    fn shape_names_round_trip() {
        assert_eq!(Shape::parse("poisson"), Some(Shape::Poisson));
        assert!(matches!(Shape::parse("burst"), Some(Shape::Bursty { .. })));
        assert_eq!(Shape::parse("nope"), None);
        assert_eq!(Shape::Poisson.name(), "poisson");
    }
}
