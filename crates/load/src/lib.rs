//! `react-load` — seeded open-loop load generation for the REACT
//! ingest front-end.
//!
//! Three pieces:
//!
//! * [`trace`] — pre-generated arrival traces (Poisson or bursty),
//!   deterministic per seed down to the byte;
//! * [`client`] — the open-loop TCP replay client that offers each
//!   arrival at its trace instant over persistent HTTP/1.1
//!   connections, letting the door's admission ladder do the shedding;
//! * [`report`] — run orchestration (self-hosts an
//!   [`react_runtime::IngestRuntime`]), p50/p99/p999 assignment-latency
//!   percentiles and the provenance-stamped `BENCH_load.json` artifact.
//!
//! `std::net` usage in this crate is sanctioned by the `react-analyze`
//! `net-boundary` rule — the load generator *is* the wire boundary's
//! other half.

#![warn(missing_docs)]

pub mod client;
pub mod report;
pub mod trace;

pub use client::{replay, ClientStats};
pub use report::{
    default_json_path, kpi_rows, percentile, render, run, to_json_with, write_json_stamped,
    LoadParams, LoadRunReport,
};
pub use trace::{build_trace, trace_hash, trace_text, Shape, TraceEntry};
