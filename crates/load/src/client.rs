//! Open-loop TCP replay client.
//!
//! Senders pace submissions off the shared [`ScaledClock`]: each entry
//! is offered when the crowd clock reaches its arrival instant,
//! regardless of how earlier submissions fared — the door's admission
//! ladder, not the client, decides what is shed. Connections are
//! persistent (HTTP/1.1 keep-alive) with one reconnect retry when the
//! server closes one under us.

use react_runtime::ScaledClock;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::trace::TraceEntry;

/// Aggregate outcome of one replay.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// Requests written to the wire.
    pub sent: AtomicU64,
    /// 202 responses (admitted).
    pub accepted: AtomicU64,
    /// 429 responses (shed at the door).
    pub shed: AtomicU64,
    /// Any other HTTP status.
    pub rejected: AtomicU64,
    /// Requests lost to transport errors after the retry.
    pub transport_errors: AtomicU64,
    /// Reconnections performed.
    pub reconnects: AtomicU64,
}

impl ClientStats {
    /// Total requests that received *some* HTTP response.
    pub fn answered(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
            + self.shed.load(Ordering::Relaxed)
            + self.rejected.load(Ordering::Relaxed)
    }
}

/// One persistent keep-alive connection.
struct Connection {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    fn open(addr: SocketAddr) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection {
            writer: stream,
            reader,
        })
    }

    /// Writes one request and reads one response; returns the status.
    fn roundtrip(&mut self, request: &[u8]) -> std::io::Result<u16> {
        self.writer.write_all(request)?;
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before response",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        // Drain headers, then the body, so the connection is reusable.
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ));
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some(v) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap_or(0);
            }
        }
        if content_length > 0 {
            let mut body = vec![0u8; content_length];
            self.reader.read_exact(&mut body)?;
        }
        Ok(status)
    }
}

/// Renders a trace entry as its `POST /tasks` request bytes.
pub fn submit_request(entry: &TraceEntry) -> Vec<u8> {
    let body = format!(
        "{{\"deadline\": {:.6}, \"reward\": {:.6}, \"lat\": {:.6}, \"lon\": {:.6}, \"category\": {}}}",
        entry.deadline, entry.reward, entry.lat, entry.lon, entry.category
    );
    format!(
        "POST /tasks HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

/// Replays `trace` against `addr`, pacing off `clock`, spreading
/// entries round-robin over `senders` threads (each with its own
/// persistent connection). Blocks until every entry has been offered.
pub fn replay(
    addr: SocketAddr,
    clock: ScaledClock,
    trace: &[TraceEntry],
    senders: usize,
) -> ClientStats {
    let stats = ClientStats::default();
    let senders = senders.max(1);
    std::thread::scope(|scope| {
        for tid in 0..senders {
            let stats = &stats;
            let entries = trace.iter().skip(tid).step_by(senders);
            scope.spawn(move || {
                let mut conn: Option<Connection> = None;
                for entry in entries {
                    let now = clock.now();
                    if entry.at > now {
                        std::thread::sleep(clock.to_wall(entry.at - now));
                    }
                    let request = submit_request(entry);
                    stats.sent.fetch_add(1, Ordering::Relaxed);
                    match send_with_retry(&mut conn, addr, &request, stats) {
                        Some(202) => {
                            stats.accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(429) => {
                            stats.shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(_) => {
                            stats.rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            stats.transport_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    stats
}

/// Sends on the cached connection, reconnecting once on failure.
fn send_with_retry(
    conn: &mut Option<Connection>,
    addr: SocketAddr,
    request: &[u8],
    stats: &ClientStats,
) -> Option<u16> {
    for attempt in 0..2 {
        if conn.is_none() {
            match Connection::open(addr) {
                Ok(c) => {
                    if attempt > 0 {
                        stats.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    *conn = Some(c);
                }
                Err(_) => continue,
            }
        }
        if let Some(c) = conn.as_mut() {
            match c.roundtrip(request) {
                Ok(status) => return Some(status),
                Err(_) => *conn = None,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_request_is_well_framed() {
        let entry = TraceEntry {
            at: 0.0,
            deadline: 90.0,
            reward: 0.05,
            lat: 38.0,
            lon: 23.7,
            category: 1,
        };
        let bytes = submit_request(&entry);
        let text = String::from_utf8(bytes).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
        assert!(head.starts_with("POST /tasks HTTP/1.1"));
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(length, body.len());
        assert!(body.contains("\"deadline\": 90.000000"));
        assert!(body.contains("\"category\": 1"));
    }
}
