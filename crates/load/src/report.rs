//! Load-run orchestration and the `BENCH_load.json` artifact.
//!
//! [`run`] self-hosts an [`IngestRuntime`], replays a seeded trace
//! through real TCP connections with the open-loop client, shuts the
//! stack down and folds the door counters, scheduler report and
//! latency percentiles into one [`LoadRunReport`].

use react_metrics::{write_stamped, ArtifactOutcome, KpiRow, Provenance};
use react_runtime::{IngestConfig, IngestRuntime, Stopwatch};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;

use crate::client;
use crate::trace::{build_trace, trace_hash, trace_span, Shape};

/// Parameters of one load run.
#[derive(Debug, Clone)]
pub struct LoadParams {
    /// RNG seed (trace + worker population + behaviour).
    pub seed: u64,
    /// Arrival-process shape.
    pub shape: Shape,
    /// Offered rate, tasks per crowd second.
    pub rate: f64,
    /// Trace length.
    pub tasks: usize,
    /// Crowd seconds per wall second.
    pub time_scale: f64,
    /// Worker-host threads in the hosted runtime.
    pub n_workers: usize,
    /// Sender threads in the replay client.
    pub senders: usize,
    /// Acceptor threads at the door.
    pub acceptors: usize,
    /// Bounded door→scheduler queue capacity.
    pub queue_capacity: usize,
    /// Backlog watermark above which the door sheds.
    pub backlog_watermark: usize,
}

impl Default for LoadParams {
    fn default() -> Self {
        LoadParams {
            seed: 2013,
            shape: Shape::Poisson,
            // 9.375 tasks per crowd second (the paper's Fig. 5 rate);
            // at the default compression this offers ~2M requests per
            // wall hour through the TCP door.
            rate: 9.375,
            tasks: 4000,
            time_scale: 60.0,
            n_workers: 60,
            senders: 4,
            // One acceptor per sender thread: an acceptor serves one
            // keep-alive connection at a time, so a 4-sender replay
            // needs 4 to keep every connection live for the whole run.
            acceptors: 4,
            queue_capacity: 256,
            backlog_watermark: 512,
        }
    }
}

impl LoadParams {
    /// A CI-sized variant (~seconds of wall time). Senders match the
    /// acceptor count: each acceptor serves one keep-alive connection
    /// at a time, so surplus senders would stall in read timeouts on a
    /// slow CI box instead of measuring the door.
    pub fn quick() -> Self {
        LoadParams {
            tasks: 1200,
            n_workers: 40,
            senders: 2,
            ..LoadParams::default()
        }
    }
}

/// Everything one load run measured.
#[derive(Debug, Clone)]
pub struct LoadRunReport {
    /// The parameters the run used.
    pub params: LoadParams,
    /// FNV-1a 64 fingerprint of the replayed trace.
    pub trace_hash: u64,
    /// Wall seconds spent replaying (client-side, offer to last shutdown).
    pub wall_seconds: f64,
    /// Crowd seconds the trace spans.
    pub crowd_span: f64,
    /// Requests the client put on the wire.
    pub sent: u64,
    /// Requests lost to transport errors.
    pub transport_errors: u64,
    /// `POST /tasks` requests the door saw.
    pub offered: u64,
    /// Submissions admitted.
    pub accepted: u64,
    /// Submissions shed with 429.
    pub shed_door: u64,
    /// Malformed/unroutable requests.
    pub rejected: u64,
    /// Tasks completed.
    pub completed: u64,
    /// Completions inside the deadline.
    pub met_deadline: u64,
    /// Tasks that expired.
    pub expired: u64,
    /// Tasks the scheduler shed or force-drained.
    pub shed_server: u64,
    /// Eq. (2)/timeout recalls issued.
    pub recalls: u64,
    /// Matching batches run.
    pub batches: u64,
    /// Conservation identity verdict from the scheduler.
    pub conserved: bool,
    /// Offered wall throughput, requests per hour.
    pub offered_per_hour: f64,
    /// Admitted wall throughput, requests per hour.
    pub sustained_per_hour: f64,
    /// Door shed fraction of offered load.
    pub shed_rate: f64,
    /// Median door-to-assignment latency, crowd seconds.
    pub p50_assign: f64,
    /// 99th percentile assignment latency, crowd seconds.
    pub p99_assign: f64,
    /// 99.9th percentile assignment latency, crowd seconds.
    pub p999_assign: f64,
    /// Assignments the percentiles are computed over.
    pub assignments_measured: u64,
    /// Peak bounded-queue depth.
    pub peak_queue_depth: usize,
    /// Peak door-visible backlog.
    pub peak_backlog: usize,
}

/// Nearest-rank percentile of an ascending-sorted slice; 0 when empty.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs one load scenario end to end (hosted runtime + TCP replay).
pub fn run(params: &LoadParams) -> std::io::Result<LoadRunReport> {
    let trace = build_trace(params.shape, params.rate, params.tasks, params.seed);
    let hash = trace_hash(&trace);
    let span = trace_span(&trace);
    let config = IngestConfig {
        n_workers: params.n_workers,
        time_scale: params.time_scale,
        seed: params.seed,
        queue_capacity: params.queue_capacity,
        backlog_watermark: params.backlog_watermark,
        acceptors: params.acceptors,
        ..IngestConfig::default()
    };
    let handle = IngestRuntime::new(config).start()?;
    let watch = Stopwatch::start();
    let stats = client::replay(handle.local_addr(), handle.clock(), &trace, params.senders);
    let report = handle.shutdown();
    let wall = watch.elapsed_secs();

    let hours = (wall / 3600.0).max(1e-9);
    Ok(LoadRunReport {
        params: params.clone(),
        trace_hash: hash,
        wall_seconds: wall,
        crowd_span: span,
        sent: stats.sent.load(Ordering::Relaxed),
        transport_errors: stats.transport_errors.load(Ordering::Relaxed),
        offered: report.offered,
        accepted: report.accepted,
        shed_door: report.shed_door,
        rejected: report.rejected,
        completed: report.completed,
        met_deadline: report.met_deadline,
        expired: report.expired,
        shed_server: report.shed_server,
        recalls: report.recalls,
        batches: report.batches,
        conserved: report.conserved(),
        offered_per_hour: report.offered as f64 / hours,
        sustained_per_hour: report.accepted as f64 / hours,
        shed_rate: report.shed_rate(),
        p50_assign: percentile(&report.assign_latencies, 50.0),
        p99_assign: percentile(&report.assign_latencies, 99.0),
        p999_assign: percentile(&report.assign_latencies, 99.9),
        assignments_measured: report.assign_latencies.len() as u64,
        peak_queue_depth: report.peak_queue_depth,
        peak_backlog: report.peak_backlog,
    })
}

/// Where the artifact lands: `BENCH_load.json` at the repo root,
/// beside the other BENCH documents.
pub fn default_json_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_load.json")
}

/// Serializes one or more runs as the `BENCH_load.json` document
/// (hand-rolled JSON; the workspace carries no serializer dependency).
pub fn to_json_with(runs: &[LoadRunReport], provenance: Option<&Provenance>) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"load\",\n");
    if let Some(p) = provenance {
        out.push_str(&format!("  \"provenance\": {},\n", p.to_json()));
    }
    out.push_str("  \"runs\": [\n");
    let rendered: Vec<String> = runs.iter().map(run_json).collect();
    out.push_str(&rendered.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn run_json(r: &LoadRunReport) -> String {
    format!(
        "    {{\"shape\": \"{}\", \"seed\": {}, \"rate\": {:.3}, \"tasks\": {}, \
\"time_scale\": {:.1}, \"trace_hash\": \"{:#018x}\", \"wall_seconds\": {:.3}, \
\"offered\": {}, \"accepted\": {}, \"shed_door\": {}, \"rejected\": {}, \
\"transport_errors\": {}, \"completed\": {}, \"met_deadline\": {}, \"expired\": {}, \
\"shed_server\": {}, \"recalls\": {}, \"batches\": {}, \"conserved\": {}, \
\"offered_per_hour\": {:.1}, \"sustained_per_hour\": {:.1}, \"shed_rate\": {:.6}, \
\"p50_assign\": {:.4}, \"p99_assign\": {:.4}, \"p999_assign\": {:.4}, \
\"assignments_measured\": {}, \"peak_queue_depth\": {}, \"peak_backlog\": {}}}",
        r.params.shape.name(),
        r.params.seed,
        r.params.rate,
        r.params.tasks,
        r.params.time_scale,
        r.trace_hash,
        r.wall_seconds,
        r.offered,
        r.accepted,
        r.shed_door,
        r.rejected,
        r.transport_errors,
        r.completed,
        r.met_deadline,
        r.expired,
        r.shed_server,
        r.recalls,
        r.batches,
        r.conserved,
        r.offered_per_hour,
        r.sustained_per_hour,
        r.shed_rate,
        r.p50_assign,
        r.p99_assign,
        r.p999_assign,
        r.assignments_measured,
        r.peak_queue_depth,
        r.peak_backlog,
    )
}

/// Writes the stamped artifact through the no-silent-overwrite writer.
pub fn write_json_stamped(
    runs: &[LoadRunReport],
    path: &Path,
    provenance: &Provenance,
) -> std::io::Result<ArtifactOutcome> {
    write_stamped(path, &to_json_with(runs, Some(provenance)))
}

/// One KPI row per run, for the aggregated sweep report.
pub fn kpi_rows(runs: &[LoadRunReport]) -> Vec<KpiRow> {
    runs.iter()
        .map(|r| {
            KpiRow::new()
                .label("shape", r.params.shape.name())
                .int("offered", r.offered as i64)
                .int("accepted", r.accepted as i64)
                .int("shed_door", r.shed_door as i64)
                .int("completed", r.completed as i64)
                .float("offered_per_hour", r.offered_per_hour)
                .float("p50_assign", r.p50_assign)
                .float("p99_assign", r.p99_assign)
                .float("p999_assign", r.p999_assign)
                .pct("shed_rate", r.shed_rate)
                .flag("conserved", r.conserved)
        })
        .collect()
}

/// Plain-text report for the console.
pub fn render(runs: &[LoadRunReport]) -> String {
    let mut out = String::from(
        "== load — open-loop TCP replay through the ingest door ==\n\
shape     offered  accepted  shed   req/h(wall)  p50      p99      p999     conserved\n",
    );
    for r in runs {
        out.push_str(&format!(
            "{:<9} {:<8} {:<9} {:<6} {:<12.0} {:<8.3} {:<8.3} {:<8.3} {}\n",
            r.params.shape.name(),
            r.offered,
            r.accepted,
            r.shed_door,
            r.offered_per_hour,
            r.p50_assign,
            r.p99_assign,
            r.p999_assign,
            r.conserved,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&xs, 50.0) - 50.0).abs() < 1e-12);
        assert!((percentile(&xs, 99.0) - 99.0).abs() < 1e-12);
        assert!((percentile(&xs, 99.9) - 100.0).abs() < 1e-12);
        assert!((percentile(&[7.5], 50.0) - 7.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 99.0), 0.0);
    }

    #[test]
    fn json_document_carries_every_headline_metric() {
        let report = LoadRunReport {
            params: LoadParams::default(),
            trace_hash: 0xabcd,
            wall_seconds: 1.5,
            crowd_span: 90.0,
            sent: 100,
            transport_errors: 0,
            offered: 100,
            accepted: 90,
            shed_door: 10,
            rejected: 0,
            completed: 80,
            met_deadline: 70,
            expired: 5,
            shed_server: 5,
            recalls: 3,
            batches: 12,
            conserved: true,
            offered_per_hour: 240000.0,
            sustained_per_hour: 216000.0,
            shed_rate: 0.1,
            p50_assign: 4.0,
            p99_assign: 11.0,
            p999_assign: 15.0,
            assignments_measured: 85,
            peak_queue_depth: 17,
            peak_backlog: 60,
        };
        let json = to_json_with(&[report], Some(&Provenance::new(2013)));
        for key in [
            "\"offered_per_hour\"",
            "\"p50_assign\"",
            "\"p99_assign\"",
            "\"p999_assign\"",
            "\"shed_rate\"",
            "\"conserved\": true",
            "\"provenance\"",
            "\"trace_hash\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
