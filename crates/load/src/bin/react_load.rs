//! `react-load` — replay a seeded open-loop arrival trace against a
//! self-hosted ingest front-end and report sustained throughput,
//! assignment-latency percentiles and the shed rate.
//!
//! ```text
//! USAGE: react-load [--quick] [--seed N] [--rate R] [--tasks N]
//!                   [--scale S] [--workers N] [--shape poisson|burst]
//!                   [--out PATH]
//!
//!   --quick       CI-sized run (fewer tasks/workers)
//!   --seed N      RNG seed (default 2013)
//!   --rate R      offered rate, tasks per crowd second (default 9.375)
//!   --tasks N     trace length (default 4000)
//!   --scale S     crowd seconds per wall second (default 60)
//!   --workers N   worker-host threads (default 60)
//!   --shape X     arrival shape: poisson | burst (default: both)
//!   --out PATH    artifact path (default BENCH_load.json at repo root)
//! ```

use react_load::{run, LoadParams, Shape};
use react_metrics::{ArtifactOutcome, Provenance};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: react-load [--quick] [--seed N] [--rate R] [--tasks N] \
[--scale S] [--workers N] [--shape poisson|burst] [--out PATH]";

struct Cli {
    params: LoadParams,
    shapes: Vec<Shape>,
    out: PathBuf,
}

fn parse() -> Result<Cli, String> {
    let mut quick = false;
    let mut seed: Option<u64> = None;
    let mut rate: Option<f64> = None;
    let mut tasks: Option<usize> = None;
    let mut scale: Option<f64> = None;
    let mut workers: Option<usize> = None;
    let mut shapes: Option<Vec<Shape>> = None;
    let mut out = react_load::default_json_path();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--rate" => {
                rate = Some(
                    value("--rate")?
                        .parse()
                        .map_err(|e| format!("--rate: {e}"))?,
                )
            }
            "--tasks" => {
                tasks = Some(
                    value("--tasks")?
                        .parse()
                        .map_err(|e| format!("--tasks: {e}"))?,
                )
            }
            "--scale" => {
                scale = Some(
                    value("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?,
                )
            }
            "--workers" => {
                workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--shape" => {
                let text = value("--shape")?;
                let shape = Shape::parse(&text).ok_or(format!("--shape: unknown shape {text}"))?;
                shapes = Some(vec![shape]);
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    // Explicit flags always win over the quick/default base, whatever
    // their position relative to --quick on the command line.
    let mut params = if quick {
        LoadParams::quick()
    } else {
        LoadParams::default()
    };
    if let Some(v) = seed {
        params.seed = v;
    }
    if let Some(v) = rate {
        params.rate = v;
    }
    if let Some(v) = tasks {
        params.tasks = v;
    }
    if let Some(v) = scale {
        params.time_scale = v;
    }
    if let Some(v) = workers {
        params.n_workers = v;
    }
    let shapes = shapes.unwrap_or_else(|| {
        vec![
            Shape::Poisson,
            Shape::Bursty {
                period: 30.0,
                size: 40,
            },
        ]
    });
    Ok(Cli {
        params,
        shapes,
        out,
    })
}

fn main() -> ExitCode {
    let cli = match parse() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut runs = Vec::with_capacity(cli.shapes.len());
    for shape in cli.shapes {
        let params = LoadParams {
            shape,
            ..cli.params.clone()
        };
        match run(&params) {
            Ok(report) => runs.push(report),
            Err(e) => {
                eprintln!("load run ({}) failed: {e}", shape.name());
                return ExitCode::FAILURE;
            }
        }
    }
    print!("{}", react_load::render(&runs));
    let provenance = Provenance::new(cli.params.seed).with_git_revision_from(&cli.out);
    match react_load::write_json_stamped(&runs, &cli.out, &provenance) {
        Ok(outcome) => {
            let suffix = match outcome {
                ArtifactOutcome::Created => String::new(),
                ArtifactOutcome::Unchanged => " (unchanged)".to_string(),
                ArtifactOutcome::BackedUp(prev) => {
                    format!(" (previous version preserved at {})", prev.display())
                }
            };
            println!("# JSON → {}{}", cli.out.display(), suffix);
        }
        Err(e) => {
            eprintln!("failed to write {}: {e}", cli.out.display());
            return ExitCode::FAILURE;
        }
    }
    if runs.iter().any(|r| !r.conserved) {
        eprintln!("conservation identity violated — see report above");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
