//! Error type for middleware operations.

use crate::ids::{TaskId, WorkerId};
use std::fmt;

/// Errors surfaced by the REACT middleware's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The worker id is not registered.
    UnknownWorker(WorkerId),
    /// The task id is not tracked (never submitted, or already retired).
    UnknownTask(TaskId),
    /// A worker id was registered twice.
    DuplicateWorker(WorkerId),
    /// A task id was submitted twice.
    DuplicateTask(TaskId),
    /// The operation requires the task to be assigned to this worker.
    NotAssigned {
        /// The task in question.
        task: TaskId,
        /// The worker claimed to be executing it.
        worker: WorkerId,
    },
    /// A configuration rejected by [`crate::Config::validate`] (returned
    /// by `ServerBuilder::build`).
    InvalidConfig {
        /// What is wrong with the configuration.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownWorker(w) => write!(f, "unknown {w}"),
            CoreError::UnknownTask(t) => write!(f, "unknown {t}"),
            CoreError::DuplicateWorker(w) => write!(f, "{w} already registered"),
            CoreError::DuplicateTask(t) => write!(f, "{t} already submitted"),
            CoreError::NotAssigned { task, worker } => {
                write!(f, "{task} is not assigned to {worker}")
            }
            CoreError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Public-facing alias: the error type REACT's middleware API returns.
pub type ReactError = CoreError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::UnknownWorker(WorkerId(1)).to_string(),
            "unknown worker#1"
        );
        assert_eq!(
            CoreError::DuplicateTask(TaskId(2)).to_string(),
            "task#2 already submitted"
        );
        let e = CoreError::NotAssigned {
            task: TaskId(1),
            worker: WorkerId(2),
        };
        assert!(e.to_string().contains("not assigned"));
        let e = CoreError::InvalidConfig {
            reason: "batch.min_unassigned must be at least 1".into(),
        };
        assert!(e.to_string().starts_with("invalid configuration:"));
    }
}
