//! Worker-profile checkpointing.
//!
//! Crowd-worker profiles are long-lived assets — accuracy histories and
//! execution-time records accumulate over weeks of marketplace activity,
//! and a middleware restart must not reset every worker to "in
//! training". This module serialises a [`ProfilingComponent`] to a
//! versioned, line-oriented text format and restores it exactly
//! (locations, availability excepted — restored workers come back
//! available, matching a reconnect).
//!
//! Format (`reactprofile v1`):
//!
//! ```text
//! reactprofile v1
//! worker <id> <lat> <lon> <assignments> <reward_lo|-> <reward_hi|->
//! cat <id> <category> <finished> <positive>
//! exec <id> <t1> <t2> …
//! ```
//!
//! Floats round-trip exactly via Rust's shortest-representation
//! formatting. No `serde`: the format is three record types over
//! whitespace-separated fields (see the dependency policy in
//! `DESIGN.md`).

use crate::error::CoreError;
use crate::ids::{TaskCategory, WorkerId};
use crate::profiling::ProfilingComponent;
use react_geo::GeoPoint;
use react_prob::EstimatorConfig;
use std::fmt;

/// Parse errors for checkpoint text.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// Missing or unsupported header line.
    BadHeader(String),
    /// A malformed record line (1-based line number + message).
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A `cat`/`exec` record referenced an undeclared worker.
    UnknownWorker {
        /// 1-based line number.
        line: usize,
        /// The undeclared id.
        id: u64,
    },
    /// A worker id appeared twice.
    Duplicate(CoreError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadHeader(h) => write!(f, "bad checkpoint header: '{h}'"),
            PersistError::BadRecord { line, message } => {
                write!(f, "line {line}: {message}")
            }
            PersistError::UnknownWorker { line, id } => {
                write!(f, "line {line}: worker {id} not declared")
            }
            PersistError::Duplicate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PersistError {}

const HEADER: &str = "reactprofile v1";

/// Serialises every profile (sorted by worker id) to checkpoint text.
pub fn export_profiles(profiling: &ProfilingComponent) -> String {
    let mut profiles: Vec<_> = profiling.iter().collect();
    profiles.sort_by_key(|p| p.id());
    let mut out = String::from(HEADER);
    out.push('\n');
    for p in &profiles {
        let (lo, hi) = match p.reward_range() {
            Some((lo, hi)) => (lo.to_string(), hi.to_string()),
            None => ("-".to_string(), "-".to_string()),
        };
        out.push_str(&format!(
            "worker {} {} {} {} {} {}\n",
            p.id().0,
            p.location().lat(),
            p.location().lon(),
            p.assignments_served(),
            lo,
            hi
        ));
        for (category, finished, positive) in p.category_stats() {
            out.push_str(&format!(
                "cat {} {} {finished} {positive}\n",
                p.id().0,
                category.0
            ));
        }
        if !p.exec_samples().is_empty() {
            out.push_str(&format!("exec {}", p.id().0));
            for t in p.exec_samples() {
                out.push_str(&format!(" {t}"));
            }
            out.push('\n');
        }
    }
    out
}

/// Restores a [`ProfilingComponent`] from checkpoint text.
pub fn import_profiles(
    text: &str,
    estimator: EstimatorConfig,
) -> Result<ProfilingComponent, PersistError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| PersistError::BadHeader(String::new()))?;
    if header.trim() != HEADER {
        return Err(PersistError::BadHeader(header.to_string()));
    }

    // First pass collects per-worker state so samples replay in order
    // regardless of record interleaving.
    struct Pending {
        location: GeoPoint,
        assignments: u64,
        reward_range: Option<(f64, f64)>,
        cats: Vec<(TaskCategory, u64, u64)>,
        exec: Vec<f64>,
    }
    let mut order: Vec<u64> = Vec::new();
    let mut pending: std::collections::HashMap<u64, Pending> = std::collections::HashMap::new();

    let bad = |line: usize, message: &str| PersistError::BadRecord {
        line,
        message: message.to_string(),
    };

    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let kind = fields.next().expect("non-empty line has a first field");
        match kind {
            "worker" => {
                let parts: Vec<&str> = fields.collect();
                if parts.len() != 6 {
                    return Err(bad(line_no, "worker record needs 6 fields"));
                }
                let id: u64 = parts[0].parse().map_err(|_| bad(line_no, "bad id"))?;
                let lat: f64 = parts[1].parse().map_err(|_| bad(line_no, "bad lat"))?;
                let lon: f64 = parts[2].parse().map_err(|_| bad(line_no, "bad lon"))?;
                let assignments: u64 = parts[3].parse().map_err(|_| bad(line_no, "bad count"))?;
                let reward_range = match (parts[4], parts[5]) {
                    ("-", "-") => None,
                    (lo, hi) => Some((
                        lo.parse().map_err(|_| bad(line_no, "bad reward lo"))?,
                        hi.parse().map_err(|_| bad(line_no, "bad reward hi"))?,
                    )),
                };
                if pending
                    .insert(
                        id,
                        Pending {
                            location: GeoPoint::new(lat, lon),
                            assignments,
                            reward_range,
                            cats: Vec::new(),
                            exec: Vec::new(),
                        },
                    )
                    .is_some()
                {
                    return Err(PersistError::Duplicate(CoreError::DuplicateWorker(
                        WorkerId(id),
                    )));
                }
                order.push(id);
            }
            "cat" => {
                let parts: Vec<&str> = fields.collect();
                if parts.len() != 4 {
                    return Err(bad(line_no, "cat record needs 4 fields"));
                }
                let id: u64 = parts[0].parse().map_err(|_| bad(line_no, "bad id"))?;
                let category: u32 = parts[1].parse().map_err(|_| bad(line_no, "bad category"))?;
                let finished: u64 = parts[2].parse().map_err(|_| bad(line_no, "bad finished"))?;
                let positive: u64 = parts[3].parse().map_err(|_| bad(line_no, "bad positive"))?;
                let p = pending
                    .get_mut(&id)
                    .ok_or(PersistError::UnknownWorker { line: line_no, id })?;
                p.cats.push((TaskCategory(category), finished, positive));
            }
            "exec" => {
                let mut parts = fields;
                let id: u64 = parts
                    .next()
                    .ok_or_else(|| bad(line_no, "exec record needs an id"))?
                    .parse()
                    .map_err(|_| bad(line_no, "bad id"))?;
                let p = pending
                    .get_mut(&id)
                    .ok_or(PersistError::UnknownWorker { line: line_no, id })?;
                for t in parts {
                    p.exec
                        .push(t.parse().map_err(|_| bad(line_no, "bad sample"))?);
                }
            }
            other => return Err(bad(line_no, &format!("unknown record '{other}'"))),
        }
    }

    let mut profiling = ProfilingComponent::new(estimator);
    for id in order {
        let p = pending.remove(&id).expect("collected above");
        profiling
            .restore(
                WorkerId(id),
                p.location,
                p.assignments,
                p.reward_range,
                &p.cats,
                &p.exec,
            )
            .map_err(PersistError::Duplicate)?;
    }
    Ok(profiling)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskCategory;

    fn populated() -> ProfilingComponent {
        let mut p = ProfilingComponent::default();
        p.register(WorkerId(2), GeoPoint::new(37.98, 23.72))
            .unwrap();
        p.register(WorkerId(1), GeoPoint::new(40.64, 22.94))
            .unwrap();
        p.set_reward_range(WorkerId(1), Some((0.05, 0.5))).unwrap();
        for (t, ok) in [(2.5, true), (4.0, false), (8.25, true)] {
            p.record_assignment(WorkerId(1)).unwrap();
            p.record_completion(WorkerId(1), TaskCategory(3), t, ok)
                .unwrap();
        }
        p.record_assignment(WorkerId(2)).unwrap();
        p.record_completion(WorkerId(2), TaskCategory(0), 11.5, true)
            .unwrap();
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = populated();
        let text = export_profiles(&original);
        let restored = import_profiles(&text, EstimatorConfig::default()).unwrap();
        assert_eq!(restored.len(), 2);
        for orig in original.iter() {
            let got = restored.profile(orig.id()).unwrap();
            assert_eq!(got.location(), orig.location());
            assert_eq!(got.assignments_served(), orig.assignments_served());
            assert_eq!(got.reward_range(), orig.reward_range());
            assert_eq!(got.category_stats(), orig.category_stats());
            assert_eq!(got.exec_samples(), orig.exec_samples());
            assert_eq!(
                got.accuracy(TaskCategory(3)),
                orig.accuracy(TaskCategory(3))
            );
        }
        // Double round-trip is byte-stable (sorted, canonical floats).
        assert_eq!(export_profiles(&restored), text);
    }

    #[test]
    fn restored_estimator_is_equivalent() {
        let original = populated();
        let mut restored =
            import_profiles(&export_profiles(&original), EstimatorConfig::default()).unwrap();
        let model = restored
            .profile_mut(WorkerId(1))
            .unwrap()
            .exec_model()
            .expect("3 samples restored");
        assert_eq!(model.k_min(), 2.5);
    }

    #[test]
    fn empty_component_roundtrip() {
        let empty = ProfilingComponent::default();
        let text = export_profiles(&empty);
        assert_eq!(text, "reactprofile v1\n");
        let restored = import_profiles(&text, EstimatorConfig::default()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            import_profiles("", EstimatorConfig::default()),
            Err(PersistError::BadHeader(_))
        ));
        assert!(matches!(
            import_profiles("profilev9\n", EstimatorConfig::default()),
            Err(PersistError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_malformed_records() {
        let base = "reactprofile v1\n";
        for (text, expect) in [
            ("worker 1 2.0\n", "6 fields"),
            ("worker x 1 2 3 - -\n", "bad id"),
            ("cat 1 0 5\n", "4 fields"),
            ("bogus 1 2 3\n", "unknown record"),
            ("exec\n", "needs an id"),
        ] {
            let err =
                import_profiles(&format!("{base}{text}"), EstimatorConfig::default()).unwrap_err();
            assert!(
                err.to_string().contains(expect),
                "'{text}' → {err} (expected '{expect}')"
            );
        }
    }

    #[test]
    fn rejects_undeclared_and_duplicate_workers() {
        let err = import_profiles("reactprofile v1\ncat 7 0 1 1\n", EstimatorConfig::default())
            .unwrap_err();
        assert!(matches!(err, PersistError::UnknownWorker { id: 7, .. }));
        let err = import_profiles(
            "reactprofile v1\nworker 1 0 0 0 - -\nworker 1 0 0 0 - -\n",
            EstimatorConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PersistError::Duplicate(_)));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "reactprofile v1\n\n# a comment\nworker 5 1.0 2.0 7 - -\n";
        let restored = import_profiles(text, EstimatorConfig::default()).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(
            restored.profile(WorkerId(5)).unwrap().assignments_served(),
            7
        );
    }
}
