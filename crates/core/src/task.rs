//! The task model.
//!
//! Sec. III-B: every task enters the system as
//! `⟨id, latitude, longitude, deadline, reward, description⟩`; it carries
//! a soft real-time deadline (an interval from submission within which it
//! should complete), and the middleware tracks which worker (if any) it
//! is assigned to and since when.

use crate::ids::{TaskCategory, TaskId, WorkerId};
use react_geo::GeoPoint;

/// An immutable task description as submitted by a Requester.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Unique task id.
    pub id: TaskId,
    /// The location the task refers to (`latitude_j`, `longitude_j`).
    pub location: GeoPoint,
    /// Soft deadline: seconds from submission within which the task
    /// should complete.
    pub deadline: f64,
    /// Monetary reward for the worker who completes it.
    pub reward: f64,
    /// Category used by the accuracy weight function.
    pub category: TaskCategory,
    /// Human-readable description ("Is road A highly congested?").
    pub description: String,
}

impl Task {
    /// Creates a task.
    ///
    /// # Panics
    /// Panics when `deadline` is not positive/finite or `reward` is
    /// negative/not finite — both are requester-supplied configuration
    /// the platform validates at ingestion.
    pub fn new(
        id: TaskId,
        location: GeoPoint,
        deadline: f64,
        reward: f64,
        category: TaskCategory,
        description: impl Into<String>,
    ) -> Self {
        assert!(
            deadline.is_finite() && deadline > 0.0,
            "task deadline must be positive and finite, got {deadline}"
        );
        assert!(
            reward.is_finite() && reward >= 0.0,
            "task reward must be non-negative and finite, got {reward}"
        );
        Task {
            id,
            location,
            deadline,
            reward,
            category,
            description: description.into(),
        }
    }
}

/// Lifecycle state of a task inside the middleware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskState {
    /// Waiting in the scheduler's pool for an assignment.
    Unassigned,
    /// Executing at a worker since `assigned_at`.
    Assigned {
        /// The executing worker.
        worker: WorkerId,
        /// When the assignment was made (seconds).
        assigned_at: f64,
    },
    /// Finished (possibly after the deadline — soft real-time).
    Completed {
        /// The worker that produced the result.
        worker: WorkerId,
        /// Completion timestamp (seconds).
        completed_at: f64,
        /// Whether completion happened before the deadline.
        met_deadline: bool,
    },
    /// The deadline passed without a result; the task left the system.
    Expired,
}

impl TaskState {
    /// True while the task can still be (re)assigned.
    pub fn is_open(&self) -> bool {
        matches!(self, TaskState::Unassigned | TaskState::Assigned { .. })
    }

    /// The currently executing worker, when assigned.
    pub fn assigned_worker(&self) -> Option<WorkerId> {
        match self {
            TaskState::Assigned { worker, .. } => Some(*worker),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point() -> GeoPoint {
        GeoPoint::new(37.98, 23.72)
    }

    #[test]
    fn task_construction() {
        let t = Task::new(TaskId(1), point(), 90.0, 0.05, TaskCategory(2), "desc");
        assert_eq!(t.id, TaskId(1));
        assert_eq!(t.deadline, 90.0);
        assert_eq!(t.reward, 0.05);
        assert_eq!(t.category, TaskCategory(2));
        assert_eq!(t.description, "desc");
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn rejects_zero_deadline() {
        let _ = Task::new(TaskId(1), point(), 0.0, 0.0, TaskCategory(0), "");
    }

    #[test]
    #[should_panic(expected = "reward")]
    fn rejects_negative_reward() {
        let _ = Task::new(TaskId(1), point(), 10.0, -1.0, TaskCategory(0), "");
    }

    #[test]
    fn state_predicates() {
        assert!(TaskState::Unassigned.is_open());
        let assigned = TaskState::Assigned {
            worker: WorkerId(3),
            assigned_at: 1.0,
        };
        assert!(assigned.is_open());
        assert_eq!(assigned.assigned_worker(), Some(WorkerId(3)));
        assert_eq!(TaskState::Unassigned.assigned_worker(), None);
        let done = TaskState::Completed {
            worker: WorkerId(3),
            completed_at: 5.0,
            met_deadline: true,
        };
        assert!(!done.is_open());
        assert!(!TaskState::Expired.is_open());
    }
}
