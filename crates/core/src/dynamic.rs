//! The Dynamic Assignment Component.
//!
//! Periodically evaluates Eq. (2) — `Pr(t_ij < ExecTime_ij < TTD_ij)` —
//! for every in-flight assignment, using the executing worker's fitted
//! power-law model. When the probability falls below the configured
//! threshold (10 % in the paper) the task is recalled so the Scheduling
//! Component can find a better worker. Two guards from the paper:
//!
//! * the model *"needs at least 3 completed tasks in the worker's
//!   profile to be initiated"* — cold workers are never second-guessed;
//! * once a task's deadline has already passed there is no better worker
//!   by definition (*"there is no worker that will have a better
//!   probability to finish the task before deadline when it has already
//!   expired"*), so no recall is issued and the worker finishes late.

use crate::config::Config;
use crate::ids::{TaskId, WorkerId};
use crate::profiling::ProfilingComponent;
use crate::task_mgmt::TaskManagementComponent;
use react_prob::DeadlineModel;

/// One recall decision: which task to pull back from which worker, and
/// the Eq. (2) probability that triggered it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recall {
    /// The task to reassign.
    pub task: TaskId,
    /// The worker it is recalled from.
    pub worker: WorkerId,
    /// The probability that fell below the threshold.
    pub probability: f64,
}

/// Stateless in-flight checker.
#[derive(Debug, Default, Clone, Copy)]
pub struct DynamicAssignmentComponent;

impl DynamicAssignmentComponent {
    /// Scans all in-flight assignments at time `now` and returns the
    /// recalls mandated by Eq. (2). Does not mutate any component.
    pub fn check(
        config: &Config,
        profiling: &mut ProfilingComponent,
        tasks: &TaskManagementComponent,
        now: f64,
    ) -> Vec<Recall> {
        if !config.matcher.uses_probabilistic_model() {
            return Vec::new();
        }
        let deadline_model = DeadlineModel::new(config.deadline);
        let mut recalls = Vec::new();
        for (task_id, worker_id) in tasks.assigned() {
            let rec = tasks.record(task_id).expect("assigned ids are tracked");
            // Past-due tasks are left to finish late.
            if rec.remaining_time(now) <= 0.0 {
                continue;
            }
            let Ok(profile) = profiling.profile_mut(worker_id) else {
                continue; // worker deregistered mid-flight
            };
            let Some(model) = profile.deadline_dist(config.latency_model) else {
                continue; // cold profile: model not initiated yet
            };
            let elapsed = rec
                .elapsed_since_assignment(now)
                .expect("assigned tasks have an assignment timestamp");
            let ttd = rec.time_to_deadline().expect("assigned tasks have a TTD");
            let decision = deadline_model.check_in_flight(&model, elapsed, ttd);
            if decision.is_reassign() {
                recalls.push(Recall {
                    task: task_id,
                    worker: worker_id,
                    probability: decision.probability(),
                });
            }
        }
        recalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatcherPolicy;
    use crate::ids::TaskCategory;
    use crate::task::Task;
    use react_geo::GeoPoint;

    fn task(id: u64, deadline: f64) -> Task {
        Task::new(
            TaskId(id),
            GeoPoint::new(37.98, 23.72),
            deadline,
            0.05,
            TaskCategory(0),
            "t",
        )
    }

    /// One worker with a fast profile (completes in 2–4 s) holding one
    /// task with the given deadline, assigned at t=0.
    fn setup(deadline: f64) -> (Config, ProfilingComponent, TaskManagementComponent) {
        let config = Config::paper_defaults();
        let mut p = ProfilingComponent::default();
        p.register(WorkerId(1), GeoPoint::new(37.98, 23.72))
            .unwrap();
        for t in [2.0, 3.0, 4.0] {
            p.record_completion(WorkerId(1), TaskCategory(0), t, true)
                .unwrap();
        }
        let mut tm = TaskManagementComponent::new();
        tm.submit(task(1, deadline), 0.0).unwrap();
        tm.mark_assigned(TaskId(1), WorkerId(1), 0.0).unwrap();
        (config, p, tm)
    }

    #[test]
    fn fresh_assignment_is_kept() {
        let (config, mut p, tm) = setup(60.0);
        let recalls = DynamicAssignmentComponent::check(&config, &mut p, &tm, 0.5);
        assert!(recalls.is_empty());
    }

    #[test]
    fn stalled_assignment_is_recalled() {
        let (config, mut p, tm) = setup(60.0);
        // 55 s elapsed on a worker that always finished in ≤ 4 s: the
        // in-window probability is ~0 → recall.
        let recalls = DynamicAssignmentComponent::check(&config, &mut p, &tm, 55.0);
        assert_eq!(recalls.len(), 1);
        assert_eq!(recalls[0].task, TaskId(1));
        assert_eq!(recalls[0].worker, WorkerId(1));
        assert!(recalls[0].probability < config.deadline.reassign_threshold);
    }

    #[test]
    fn past_due_task_is_left_alone() {
        let (config, mut p, tm) = setup(60.0);
        let recalls = DynamicAssignmentComponent::check(&config, &mut p, &tm, 61.0);
        assert!(recalls.is_empty(), "expired in-flight tasks finish late");
    }

    #[test]
    fn cold_worker_is_never_recalled() {
        let config = Config::paper_defaults();
        let mut p = ProfilingComponent::default();
        p.register(WorkerId(1), GeoPoint::new(37.98, 23.72))
            .unwrap();
        // Only 2 completions — below the 3-task activation rule.
        for t in [2.0, 3.0] {
            p.record_completion(WorkerId(1), TaskCategory(0), t, true)
                .unwrap();
        }
        let mut tm = TaskManagementComponent::new();
        tm.submit(task(1, 60.0), 0.0).unwrap();
        tm.mark_assigned(TaskId(1), WorkerId(1), 0.0).unwrap();
        let recalls = DynamicAssignmentComponent::check(&config, &mut p, &tm, 55.0);
        assert!(recalls.is_empty());
    }

    #[test]
    fn traditional_policy_disables_checks() {
        let (mut config, mut p, tm) = setup(60.0);
        config.matcher = MatcherPolicy::Traditional;
        let recalls = DynamicAssignmentComponent::check(&config, &mut p, &tm, 55.0);
        assert!(recalls.is_empty());
    }

    #[test]
    fn deregistered_worker_is_skipped() {
        let (config, mut p, tm) = setup(60.0);
        p.deregister(WorkerId(1)).unwrap();
        let recalls = DynamicAssignmentComponent::check(&config, &mut p, &tm, 55.0);
        assert!(recalls.is_empty());
    }
}
