//! Task lifecycle audit log.
//!
//! When enabled ([`crate::ServerBuilder::audit`] or the `config.audit`
//! flag), the server records
//! every lifecycle transition of every task. Beyond debugging, the log
//! makes the middleware's behaviour *checkable*: [`verify_lifecycles`]
//! asserts that each task's event sequence matches the legal lifecycle
//!
//! ```text
//! Submitted (Assigned (Recalled)?)* (Completed | Expired | Shed | HandedOff)?
//! ```
//!
//! with timestamps non-decreasing and the completing worker equal to the
//! last assigned one. The integration tests run it over whole simulated
//! scenarios.

use crate::ids::{TaskId, WorkerId};
use std::collections::BTreeMap;

/// What happened to a task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskEventKind {
    /// The requester submitted the task.
    Submitted,
    /// The scheduler assigned it to a worker (effective at the recorded
    /// time, i.e. after the modelled matching latency).
    Assigned {
        /// The chosen worker.
        worker: WorkerId,
    },
    /// The Eq. (2) model (or worker departure) recalled it.
    Recalled {
        /// The worker it was pulled back from.
        worker: WorkerId,
    },
    /// A worker delivered the result.
    Completed {
        /// The delivering worker.
        worker: WorkerId,
        /// Whether the deadline was met.
        met_deadline: bool,
    },
    /// The deadline passed while the task sat unassigned.
    Expired,
    /// The server shed the task (graceful degradation: queued task
    /// dropped, lowest value first, because the live worker pool fell
    /// below the configured floor).
    Shed,
    /// The cluster layer evicted the queued task from this server to
    /// re-submit it on a neighbouring shard (cross-shard handoff). From
    /// this server's perspective the task is done; the receiving shard
    /// records a fresh `Submitted` in its own log.
    HandedOff,
}

/// One audit record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskEvent {
    /// Timestamp (seconds).
    pub at: f64,
    /// The task concerned.
    pub task: TaskId,
    /// The transition.
    pub kind: TaskEventKind,
}

/// The audit log: an append-only event sequence.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    events: Vec<TaskEvent>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn push(&mut self, at: f64, task: TaskId, kind: TaskEventKind) {
        self.events.push(TaskEvent { at, task, kind });
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> &[TaskEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events of one task, in order.
    pub fn task_history(&self, task: TaskId) -> Vec<TaskEvent> {
        self.events
            .iter()
            .copied()
            .filter(|e| e.task == task)
            .collect()
    }
}

/// Checks every task's event sequence against the legal lifecycle.
/// Returns the number of tasks verified; panics (with a descriptive
/// message) on the first violation — intended for tests.
pub fn verify_lifecycles(log: &AuditLog) -> usize {
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum State {
        Fresh,
        Queued,
        Running(WorkerId),
        Done,
        /// Handed off to another shard. Unlike `Done`, the task may
        /// legally re-enter this log: a later handoff can bring it back.
        Departed,
    }
    let mut states: BTreeMap<TaskId, (State, f64)> = BTreeMap::new();
    for e in log.events() {
        let (state, last_at) = states
            .entry(e.task)
            .or_insert((State::Fresh, f64::NEG_INFINITY));
        assert!(
            e.at >= *last_at,
            "{}: timestamps went backwards ({} after {})",
            e.task,
            e.at,
            last_at
        );
        *last_at = e.at;
        *state = match (*state, e.kind) {
            (State::Fresh, TaskEventKind::Submitted) => State::Queued,
            (State::Queued, TaskEventKind::Assigned { worker }) => State::Running(worker),
            (State::Queued, TaskEventKind::Expired) => State::Done,
            (State::Queued, TaskEventKind::Shed) => State::Done,
            (State::Queued, TaskEventKind::HandedOff) => State::Departed,
            (State::Departed, TaskEventKind::Submitted) => State::Queued,
            (State::Running(w), TaskEventKind::Recalled { worker }) => {
                assert_eq!(
                    w, worker,
                    "{}: recalled from {} but was running at {}",
                    e.task, worker, w
                );
                State::Queued
            }
            (State::Running(w), TaskEventKind::Completed { worker, .. }) => {
                assert_eq!(
                    w, worker,
                    "{}: completed by {} but was running at {}",
                    e.task, worker, w
                );
                State::Done
            }
            (s, k) => panic!("{}: illegal transition {k:?} from {s:?}", e.task),
        };
    }
    states.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(seq: &[(f64, u64, TaskEventKind)]) -> AuditLog {
        let mut log = AuditLog::new();
        for &(at, task, kind) in seq {
            log.push(at, TaskId(task), kind);
        }
        log
    }

    #[test]
    fn empty_log_is_fine() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        assert_eq!(verify_lifecycles(&log), 0);
    }

    #[test]
    fn legal_lifecycle_with_recall() {
        let w1 = WorkerId(1);
        let w2 = WorkerId(2);
        let log = log_of(&[
            (0.0, 1, TaskEventKind::Submitted),
            (1.0, 1, TaskEventKind::Assigned { worker: w1 }),
            (9.0, 1, TaskEventKind::Recalled { worker: w1 }),
            (10.0, 1, TaskEventKind::Assigned { worker: w2 }),
            (
                14.0,
                1,
                TaskEventKind::Completed {
                    worker: w2,
                    met_deadline: true,
                },
            ),
        ]);
        assert_eq!(verify_lifecycles(&log), 1);
        assert_eq!(log.task_history(TaskId(1)).len(), 5);
        assert_eq!(log.len(), 5);
    }

    #[test]
    fn expiry_lifecycle() {
        let log = log_of(&[
            (0.0, 7, TaskEventKind::Submitted),
            (60.0, 7, TaskEventKind::Expired),
        ]);
        assert_eq!(verify_lifecycles(&log), 1);
    }

    #[test]
    fn shed_lifecycle_including_after_recall() {
        let w = WorkerId(1);
        let log = log_of(&[
            (0.0, 7, TaskEventKind::Submitted),
            (3.0, 7, TaskEventKind::Shed),
            (0.0, 8, TaskEventKind::Submitted),
            (1.0, 8, TaskEventKind::Assigned { worker: w }),
            (5.0, 8, TaskEventKind::Recalled { worker: w }),
            (6.0, 8, TaskEventKind::Shed),
        ]);
        assert_eq!(verify_lifecycles(&log), 2);
    }

    #[test]
    fn handoff_lifecycle_including_after_recall() {
        let w = WorkerId(4);
        let log = log_of(&[
            (0.0, 11, TaskEventKind::Submitted),
            (2.0, 11, TaskEventKind::HandedOff),
            (0.0, 12, TaskEventKind::Submitted),
            (1.0, 12, TaskEventKind::Assigned { worker: w }),
            (5.0, 12, TaskEventKind::Recalled { worker: w }),
            (6.0, 12, TaskEventKind::HandedOff),
        ]);
        assert_eq!(verify_lifecycles(&log), 2);
    }

    #[test]
    fn handed_off_task_may_return() {
        // A task handed A→B and later B→A re-enters A's log: the second
        // Submitted after HandedOff is legal, unlike after Shed/Expired.
        let w = WorkerId(2);
        let log = log_of(&[
            (0.0, 20, TaskEventKind::Submitted),
            (2.0, 20, TaskEventKind::HandedOff),
            (9.0, 20, TaskEventKind::Submitted),
            (10.0, 20, TaskEventKind::Assigned { worker: w }),
            (
                12.0,
                20,
                TaskEventKind::Completed {
                    worker: w,
                    met_deadline: true,
                },
            ),
        ]);
        assert_eq!(verify_lifecycles(&log), 1);
    }

    #[test]
    #[should_panic(expected = "illegal transition")]
    fn rejects_resubmission_after_shed() {
        let log = log_of(&[
            (0.0, 1, TaskEventKind::Submitted),
            (1.0, 1, TaskEventKind::Shed),
            (2.0, 1, TaskEventKind::Submitted),
        ]);
        verify_lifecycles(&log);
    }

    #[test]
    #[should_panic(expected = "illegal transition")]
    fn rejects_handing_off_a_running_task() {
        let log = log_of(&[
            (0.0, 1, TaskEventKind::Submitted),
            (
                1.0,
                1,
                TaskEventKind::Assigned {
                    worker: WorkerId(1),
                },
            ),
            (2.0, 1, TaskEventKind::HandedOff),
        ]);
        verify_lifecycles(&log);
    }

    #[test]
    #[should_panic(expected = "illegal transition")]
    fn rejects_shedding_a_running_task() {
        let log = log_of(&[
            (0.0, 1, TaskEventKind::Submitted),
            (
                1.0,
                1,
                TaskEventKind::Assigned {
                    worker: WorkerId(1),
                },
            ),
            (2.0, 1, TaskEventKind::Shed),
        ]);
        verify_lifecycles(&log);
    }

    #[test]
    #[should_panic(expected = "illegal transition")]
    fn rejects_completion_without_assignment() {
        let log = log_of(&[
            (0.0, 1, TaskEventKind::Submitted),
            (
                5.0,
                1,
                TaskEventKind::Completed {
                    worker: WorkerId(1),
                    met_deadline: true,
                },
            ),
        ]);
        verify_lifecycles(&log);
    }

    #[test]
    #[should_panic(expected = "completed by")]
    fn rejects_completion_by_wrong_worker() {
        let log = log_of(&[
            (0.0, 1, TaskEventKind::Submitted),
            (
                1.0,
                1,
                TaskEventKind::Assigned {
                    worker: WorkerId(1),
                },
            ),
            (
                5.0,
                1,
                TaskEventKind::Completed {
                    worker: WorkerId(9),
                    met_deadline: false,
                },
            ),
        ]);
        verify_lifecycles(&log);
    }

    #[test]
    #[should_panic(expected = "timestamps went backwards")]
    fn rejects_time_travel() {
        let log = log_of(&[
            (10.0, 1, TaskEventKind::Submitted),
            (
                5.0,
                1,
                TaskEventKind::Assigned {
                    worker: WorkerId(1),
                },
            ),
        ]);
        verify_lifecycles(&log);
    }

    #[test]
    #[should_panic(expected = "illegal transition")]
    fn rejects_double_submission() {
        let log = log_of(&[
            (0.0, 1, TaskEventKind::Submitted),
            (1.0, 1, TaskEventKind::Submitted),
        ]);
        verify_lifecycles(&log);
    }
}
