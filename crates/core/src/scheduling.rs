//! The Scheduling Component.
//!
//! Per batch: build the weighted bipartite graph over (available workers
//! × unassigned tasks) — applying the paper's two graph-construction
//! rules — then run the configured matcher.
//!
//! Graph-construction rules (Sec. IV-A):
//!
//! 1. **Training**: *"for the first z assignments of a new worker, we
//!    instantiate the edges with all available tasks and we assign the
//!    maximum value of F"* — bootstraps profiles for fresh workers.
//! 2. **Probabilistic pruning**: otherwise an edge `(worker, task)` is
//!    only instantiated when `Pr(ExecTime < TimeToDeadline)` (Eq. 3,
//!    from the worker's power-law model) exceeds the configured lower
//!    bound; its weight is `F(worker, task)`.
//!
//! Workers whose estimator is not yet warm (fewer than the minimum
//! completed tasks) cannot be evaluated by Eq. (3); they are instantiated
//! optimistically with their current `F`, consistent with the paper's
//! intent that pruning only applies once a profile exists.
//!
//! Construction runs in two phases through [`GraphBuilder`]:
//!
//! * **Phase A** ([`GraphBuilder::prepare`]) — one *mutable* pass over
//!   the worker pool that refits each worker's lazily-cached latency
//!   model and snapshots everything edge instantiation needs into
//!   [`WorkerRow`]s.
//! * **Phase B** ([`GraphBuilder::instantiate`]) — pure edge
//!   instantiation over the precomputed rows against immutable state.
//!   Each row's edges are independent, so phase B can fan rows out over
//!   scoped threads ([`GraphBuilder::instantiate_parallel`]) and merge
//!   them back in row order — bit-identical to the serial pass. The
//!   `parallel` cargo feature makes the parallel path the default for
//!   large pools; both paths are always compiled.
//!
//! [`GraphBuilder`] is the *cold* reference path: it allocates fresh
//! buffers and evaluates Eq. (3) exactly on every edge. The server's hot
//! loop instead drives [`BatchScratch`], an incremental builder that
//! reuses the graph arenas across ticks, caches phase-A rows keyed by
//! profile epoch, and answers most Eq. (3) decisions through a memoized
//! [`EdgeGate`] — while producing a graph that is bit-identical to the
//! cold build (asserted under the `debug-invariants` feature).

use crate::config::{Config, MatcherPolicy};
use crate::ids::{TaskId, WorkerId};
use crate::profiling::{ProfilingComponent, WorkerProfile};
use crate::task_mgmt::{TaskManagementComponent, TaskRecord};
use rand::RngCore;
use react_matching::{BipartiteGraph, MatchContext, MatcherEngine, TaskIdx, WorkerIdx};
use react_prob::{DeadlineModel, EdgeGate, FittedModel};
use std::collections::HashMap;

/// The outcome of one scheduling batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Selected assignments in `(worker, task)` form.
    pub assignments: Vec<(WorkerId, TaskId)>,
    /// Achieved matching weight `Σ w_ij x_ij`.
    pub total_weight: f64,
    /// Abstract compute cost reported by the matcher over the *batch*
    /// subgraph (unassigned tasks only).
    pub cost_units: f64,
    /// Compute cost over the maintained *region* graph (all open tasks ×
    /// the worker pool) — see [`region_cost_units`]. This is what the
    /// server charges through the calibrated cost model.
    pub region_cost_units: f64,
    /// The matcher that ran.
    pub matcher_name: &'static str,
    /// Graph dimensions, for diagnostics: (workers, tasks, edges).
    pub graph_shape: (usize, usize, usize),
    /// Edges pruned by the Eq. (3) rule.
    pub pruned_edges: usize,
}

/// Phase-A product: everything phase B needs from the mutable pass over
/// one worker's profile.
#[derive(Debug, Clone)]
pub struct WorkerRow {
    /// The worker (rows keep the selection order of the pool scan).
    pub id: WorkerId,
    /// Training rule applies: first `z` assignments get maximum `F` and
    /// bypass pruning.
    pub in_training: bool,
    /// The refit Eq. (3) latency model, when the policy uses it and the
    /// worker is out of training.
    pub model: Option<FittedModel>,
}

/// Two-phase assignment-graph builder (see the module docs).
#[derive(Debug)]
pub struct GraphBuilder<'a> {
    config: &'a Config,
    rows: Vec<WorkerRow>,
}

/// Pools below this size stay on the serial path even when the
/// `parallel` feature is active — thread spawn would dominate.
const PARALLEL_MIN_ROWS: usize = 32;

impl<'a> GraphBuilder<'a> {
    /// **Phase A**: selects the worker pool and makes the *single*
    /// mutable pass over it — refitting each worker's lazily-cached
    /// deadline model and snapshotting the per-worker facts — so that
    /// phase B touches profiles only immutably (and exactly once each).
    pub fn prepare(config: &'a Config, profiling: &mut ProfilingComponent) -> Self {
        let workers = if config.matcher.uses_availability() {
            profiling.available_workers()
        } else {
            profiling.online_workers()
        };
        let use_model = config.matcher.uses_probabilistic_model();
        let rows = workers
            .into_iter()
            .filter_map(|wid| {
                // The pool scan just read these ids out of the registry;
                // a miss would mean the registry mutated mid-build. Drop
                // the row rather than abort the batch.
                let Ok(profile) = profiling.profile_mut(wid) else {
                    debug_assert!(false, "pool scan returned unregistered {wid}");
                    return None;
                };
                let in_training = profile.assignments_served() < config.training_assignments;
                let model = if use_model && !in_training {
                    profile.deadline_dist(config.latency_model)
                } else {
                    None
                };
                Some(WorkerRow {
                    id: wid,
                    in_training,
                    model,
                })
            })
            .collect();
        GraphBuilder { config, rows }
    }

    /// The phase-A rows, in pool order.
    pub fn rows(&self) -> &[WorkerRow] {
        &self.rows
    }

    /// **Phase B**: edge instantiation over the precomputed rows.
    /// Dispatches to the parallel path for large pools when the
    /// `parallel` feature is enabled, the serial path otherwise; both
    /// produce bit-identical graphs.
    pub fn instantiate(
        &self,
        profiling: &ProfilingComponent,
        tasks: &TaskManagementComponent,
        now: f64,
    ) -> (BipartiteGraph, Vec<WorkerId>, Vec<TaskId>, usize) {
        #[cfg(feature = "parallel")]
        {
            let threads = crate::par::parallelism();
            if threads > 1 && self.rows.len() >= PARALLEL_MIN_ROWS {
                return self.instantiate_parallel(profiling, tasks, now, threads);
            }
        }
        self.instantiate_serial(profiling, tasks, now)
    }

    /// Phase B, single-threaded.
    pub fn instantiate_serial(
        &self,
        profiling: &ProfilingComponent,
        tasks: &TaskManagementComponent,
        now: f64,
    ) -> (BipartiteGraph, Vec<WorkerId>, Vec<TaskId>, usize) {
        let (task_ids, recs) = Self::task_rows(tasks);
        let deadline_model = DeadlineModel::new(self.config.deadline);
        let mut graph = BipartiteGraph::new(self.rows.len(), task_ids.len());
        let mut pruned = 0usize;
        for (u, row) in self.rows.iter().enumerate() {
            // Keep row `u` aligned with worker_ids() even if the profile
            // vanished between phases: the row just contributes no edges.
            let Ok(profile) = profiling.profile(row.id) else {
                debug_assert!(false, "phase-A {} vanished from the registry", row.id);
                continue;
            };
            let (edges, row_pruned) =
                Self::row_edges(self.config, &deadline_model, row, profile, &recs, now);
            Self::push_row(&mut graph, u, &edges);
            pruned += row_pruned;
        }
        (graph, self.worker_ids(), task_ids, pruned)
    }

    /// Phase B over scoped threads: rows are split into contiguous
    /// chunks, each chunk's edges computed independently, then merged
    /// back in row order — bit-identical to the serial pass. Always
    /// compiled; the `parallel` feature only routes the default
    /// [`GraphBuilder::instantiate`] here.
    pub fn instantiate_parallel(
        &self,
        profiling: &ProfilingComponent,
        tasks: &TaskManagementComponent,
        now: f64,
        threads: usize,
    ) -> (BipartiteGraph, Vec<WorkerId>, Vec<TaskId>, usize) {
        let (task_ids, recs) = Self::task_rows(tasks);
        let deadline_model = DeadlineModel::new(self.config.deadline);
        // One immutable profile lookup per worker, like the serial pass.
        // A `None` (profile vanished between phases) leaves that row
        // edgeless, matching the serial path's skip.
        let profiles: Vec<Option<&WorkerProfile>> = self
            .rows
            .iter()
            .map(|row| profiling.profile(row.id).ok())
            .collect();
        let n = self.rows.len();
        let mut per_row: Vec<(Vec<(u32, f64)>, usize)> = vec![(Vec::new(), 0); n];
        let chunk = crate::par::chunk_len(n, threads);
        std::thread::scope(|scope| {
            let recs = &recs;
            let deadline_model = &deadline_model;
            let config = self.config;
            for ((row_chunk, profile_chunk), out_chunk) in self
                .rows
                .chunks(chunk)
                .zip(profiles.chunks(chunk))
                .zip(per_row.chunks_mut(chunk))
            {
                scope.spawn(move || {
                    for ((row, profile), out) in row_chunk
                        .iter()
                        .zip(profile_chunk.iter())
                        .zip(out_chunk.iter_mut())
                    {
                        let Some(profile) = *profile else {
                            debug_assert!(false, "phase-A {} vanished from the registry", row.id);
                            continue;
                        };
                        *out = Self::row_edges(config, deadline_model, row, profile, recs, now);
                    }
                });
            }
        });
        // Deterministic merge in row order.
        let mut graph = BipartiteGraph::new(n, task_ids.len());
        let mut pruned = 0usize;
        for (u, (edges, row_pruned)) in per_row.iter().enumerate() {
            Self::push_row(&mut graph, u, edges);
            pruned += row_pruned;
        }
        (graph, self.worker_ids(), task_ids, pruned)
    }

    fn worker_ids(&self) -> Vec<WorkerId> {
        self.rows.iter().map(|r| r.id).collect()
    }

    fn task_rows(tasks: &TaskManagementComponent) -> (Vec<TaskId>, Vec<&TaskRecord>) {
        let unassigned = tasks.unassigned();
        let mut task_ids = Vec::with_capacity(unassigned.len());
        let mut recs = Vec::with_capacity(unassigned.len());
        for &tid in unassigned {
            let Ok(rec) = tasks.record(tid) else {
                debug_assert!(false, "unassigned {tid} is not tracked");
                continue;
            };
            task_ids.push(tid);
            recs.push(rec);
        }
        (task_ids, recs)
    }

    /// The pure per-row kernel shared by both phase-B paths: the edges
    /// (task index, weight) one worker contributes, plus how many of
    /// their candidate edges the two pruning rules dropped.
    fn row_edges(
        config: &Config,
        deadline_model: &DeadlineModel,
        row: &WorkerRow,
        profile: &WorkerProfile,
        recs: &[&TaskRecord],
        now: f64,
    ) -> (Vec<(u32, f64)>, usize) {
        let mut edges = Vec::new();
        let mut pruned = 0usize;
        for (v, rec) in recs.iter().enumerate() {
            // Pricing extension (Sec. III-C): a task whose reward falls
            // outside the worker's declared range never gets an edge.
            if !profile.accepts_reward(rec.task.reward) {
                pruned += 1;
                continue;
            }
            let weight = if row.in_training {
                // Training rule: maximum F.
                1.0
            } else {
                config.weight.evaluate(profile, &rec.task)
            };
            if let Some(m) = &row.model {
                let ttd = rec.remaining_time(now);
                if !deadline_model.should_instantiate_edge(m, ttd) {
                    pruned += 1;
                    continue;
                }
            }
            edges.push((v as u32, weight));
        }
        (edges, pruned)
    }

    fn push_row(graph: &mut BipartiteGraph, u: usize, edges: &[(u32, f64)]) {
        for &(v, weight) in edges {
            // row_edges only emits in-range indices and weights the
            // graph accepts; a rejection would mean the builder itself
            // is broken, so drop the edge instead of aborting the batch.
            let pushed = graph.add_edge_unchecked(WorkerIdx(u as u32), TaskIdx(v), weight);
            debug_assert!(pushed.is_ok(), "builder emitted an invalid edge");
        }
    }
}

/// One phase-A row held in the [`BatchScratch`] cache: the snapshot
/// [`GraphBuilder::prepare`] would have produced for this worker, plus
/// the memoized Eq. (3) gate derived from the model, all valid while the
/// worker's profile epoch is unchanged.
#[derive(Debug, Clone)]
struct CachedRow {
    /// Profile epoch the snapshot was taken at; a mismatch on the next
    /// batch forces a recompute.
    epoch: u64,
    in_training: bool,
    model: Option<FittedModel>,
    /// Inverted deadline kernel for `model` (present iff `model` is).
    gate: Option<EdgeGate>,
}

/// Per-row output buffer reused across batches: the edges one worker
/// contributes plus that row's pruning/memoization tallies.
#[derive(Debug, Clone, Default)]
struct RowScratch {
    edges: Vec<(u32, f64)>,
    pruned: usize,
    memo_hits: u64,
}

/// Tallies from one [`BatchScratch::build`] call, for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Workers in the batch pool (graph rows).
    pub rows_total: usize,
    /// Rows served from the phase-A cache (profile epoch unchanged).
    pub rows_reused: usize,
    /// Rows carrying a latency model this batch (cached or refit) —
    /// the quantity the `profile.refits` counter has always reported.
    pub refits: usize,
    /// Eq. (3) decisions answered by the memoized gate instead of an
    /// exact CCDF evaluation.
    pub cdf_memo_hits: u64,
    /// Heap bytes of graph/row/pool buffers carried over from the
    /// previous batch instead of freshly allocated.
    pub bytes_reused: usize,
}

/// A graph built by [`BatchScratch::build`]: views into the scratch's
/// persistent buffers plus the batch tallies. Borrows the scratch, so
/// run the matcher over it before the next build.
#[derive(Debug)]
pub struct BuiltBatchGraph<'s> {
    /// The assignment graph (rows follow `workers`, columns `task_ids`).
    pub graph: &'s BipartiteGraph,
    /// Row → worker id map, in pool order.
    pub workers: &'s [WorkerId],
    /// Column → task id map, in submission order.
    pub task_ids: &'s [TaskId],
    /// Edges dropped by the reward-range and Eq. (3) pruning rules.
    pub pruned: usize,
    /// Reuse/memoization tallies for this build.
    pub stats: BuildStats,
}

/// Incremental assignment-graph builder: the hot-path counterpart to
/// [`GraphBuilder`] that a [`crate::ReactServer`] keeps alive across
/// ticks.
///
/// Three things persist between batches:
///
/// * **Graph arenas** — the edge list, adjacency lists and per-row edge
///   buffers are [`BipartiteGraph::reset`] and refilled in place, so a
///   steady-state tick allocates (almost) nothing.
/// * **Phase-A rows** — each worker's training flag, fitted latency
///   model and memoized [`EdgeGate`] are cached keyed by the profile
///   *epoch* ([`WorkerProfile::epoch`]); only workers whose profile
///   mutated since the last batch are recomputed. A config change clears
///   the cache wholesale (the snapshot depends on it).
/// * **Deadline kernel** — the cached gate answers Eq. (3) per edge with
///   a float compare ([`EdgeGate::classify`]); the rare ambiguous cases
///   fall back to the exact CCDF evaluation, keeping the built graph
///   bit-identical to a cold [`GraphBuilder`] pass. Under the
///   `debug-invariants` feature every build re-runs the cold path and
///   asserts edge-for-edge equality.
///
/// Entries for workers that leave the pool stay cached (epoch checks
/// keep them correct; re-registration always gets a fresh epoch), so the
/// cache is bounded by the number of distinct workers ever seen.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Worker → slot in `rows` (slots are stable across batches, so the
    /// hot loop pays one hash lookup per worker per build).
    slots: HashMap<WorkerId, u32>,
    /// Slot-addressed row cache; grows monotonically, entries are
    /// overwritten in place on epoch mismatch.
    rows: Vec<CachedRow>,
    /// This batch's pool, in selection order.
    pool: Vec<WorkerId>,
    /// `rows` slot for each pool position (aligned with `pool`).
    row_idx: Vec<u32>,
    task_ids: Vec<TaskId>,
    per_row: Vec<RowScratch>,
    graph: BipartiteGraph,
    /// Fingerprint of the config the cache was filled under; any change
    /// invalidates every cached row.
    last_config: Option<Config>,
    /// `Some(n)` pins phase B to `n` threads (1 = serial) regardless of
    /// the `parallel` feature default — safe because the two paths are
    /// bit-identical.
    threads: Option<usize>,
}

impl BatchScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins phase B to `threads` worker threads (`Some(1)` = serial,
    /// `None` = the `parallel` feature's default policy).
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads;
    }

    /// Drops every cached row (the arenas keep their capacity). The next
    /// build recomputes all of phase A, exactly like a cold start.
    pub fn invalidate(&mut self) {
        self.slots.clear();
        self.rows.clear();
        self.last_config = None;
    }

    /// Heap bytes currently retained by the persistent buffers.
    pub fn allocated_bytes(&self) -> usize {
        self.graph.allocated_bytes()
            + self.pool.capacity() * std::mem::size_of::<WorkerId>()
            + self.row_idx.capacity() * std::mem::size_of::<u32>()
            + self.task_ids.capacity() * std::mem::size_of::<TaskId>()
            + self.per_row.capacity() * std::mem::size_of::<RowScratch>()
            + self
                .per_row
                .iter()
                .map(|r| r.edges.capacity() * std::mem::size_of::<(u32, f64)>())
                .sum::<usize>()
    }

    /// Builds the batch graph incrementally. Semantically identical to
    /// [`SchedulingComponent::build_graph`] — same pool selection, same
    /// pruning rules, bit-identical edges — but reusing the scratch's
    /// buffers and row cache.
    pub fn build<'s>(
        &'s mut self,
        config: &Config,
        profiling: &mut ProfilingComponent,
        tasks: &TaskManagementComponent,
        now: f64,
    ) -> BuiltBatchGraph<'s> {
        let bytes_reused = self.allocated_bytes();
        if self.last_config.as_ref() != Some(config) {
            self.slots.clear();
            self.rows.clear();
            self.last_config = Some(config.clone());
        }

        // Phase A, incremental: refresh only the rows whose profile
        // epoch moved since the previous batch.
        let mut stats = BuildStats {
            bytes_reused,
            ..BuildStats::default()
        };
        let deadline_model = DeadlineModel::new(config.deadline);
        let use_model = config.matcher.uses_probabilistic_model();
        let selected = if config.matcher.uses_availability() {
            profiling.available_workers()
        } else {
            profiling.online_workers()
        };
        self.pool.clear();
        self.row_idx.clear();
        for wid in selected {
            // Mirrors GraphBuilder::prepare: a registry miss drops the
            // row rather than aborting the batch.
            let Ok(profile) = profiling.profile_mut(wid) else {
                debug_assert!(false, "pool scan returned unregistered {wid}");
                continue;
            };
            let epoch = profile.epoch();
            // One hash lookup per worker: the slot is allocated once and
            // its row is refreshed in place on epoch mismatch.
            let slot = match self.slots.entry(wid) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let slot = self.rows.len() as u32;
                    self.rows.push(CachedRow {
                        // Sentinel epoch: real epochs start at 1, so the
                        // fresh slot always recomputes below.
                        epoch: 0,
                        in_training: true,
                        model: None,
                        gate: None,
                    });
                    *e.insert(slot)
                }
            };
            let row = &mut self.rows[slot as usize];
            if row.epoch == epoch && epoch != 0 {
                stats.rows_reused += 1;
            } else {
                let in_training = profile.assignments_served() < config.training_assignments;
                let model = if use_model && !in_training {
                    profile.deadline_dist(config.latency_model)
                } else {
                    None
                };
                let gate = model.as_ref().map(|m| deadline_model.edge_gate(m));
                *row = CachedRow {
                    epoch,
                    in_training,
                    model,
                    gate,
                };
            }
            if row.model.is_some() {
                stats.refits += 1;
            }
            self.pool.push(wid);
            self.row_idx.push(slot);
        }
        stats.rows_total = self.pool.len();

        // Task columns (same scan as GraphBuilder::task_rows, but the id
        // buffer persists across batches).
        self.task_ids.clear();
        let unassigned = tasks.unassigned();
        let mut recs: Vec<&TaskRecord> = Vec::with_capacity(unassigned.len());
        for &tid in unassigned {
            let Ok(rec) = tasks.record(tid) else {
                debug_assert!(false, "unassigned {tid} is not tracked");
                continue;
            };
            self.task_ids.push(tid);
            recs.push(rec);
        }

        // Phase B over the persistent per-row buffers.
        let n = self.pool.len();
        if self.per_row.len() < n {
            self.per_row.resize_with(n, RowScratch::default);
        }
        for row in &mut self.per_row[..n] {
            row.edges.clear();
            row.pruned = 0;
            row.memo_hits = 0;
        }
        let threads = match self.threads {
            Some(t) => t,
            #[cfg(feature = "parallel")]
            None => crate::par::parallelism(),
            #[cfg(not(feature = "parallel"))]
            None => 1,
        };
        if threads > 1 && n >= PARALLEL_MIN_ROWS {
            self.fill_rows_parallel(config, &deadline_model, profiling, &recs, now, threads);
        } else {
            self.fill_rows_serial(config, &deadline_model, profiling, &recs, now);
        }

        // Deterministic merge in row order into the reused graph.
        self.graph.reset(n, self.task_ids.len());
        let mut pruned = 0usize;
        for (u, row) in self.per_row[..n].iter().enumerate() {
            GraphBuilder::push_row(&mut self.graph, u, &row.edges);
            pruned += row.pruned;
            stats.cdf_memo_hits += row.memo_hits;
        }

        #[cfg(feature = "debug-invariants")]
        {
            let builder = GraphBuilder::prepare(config, profiling);
            let (cold, cold_workers, cold_tasks, cold_pruned) =
                builder.instantiate_serial(profiling, tasks, now);
            assert_eq!(
                self.graph.edges(),
                cold.edges(),
                "incremental graph diverged from the cold build"
            );
            assert_eq!(self.pool, cold_workers, "incremental pool diverged");
            assert_eq!(self.task_ids, cold_tasks, "incremental columns diverged");
            assert_eq!(pruned, cold_pruned, "incremental pruning diverged");
        }

        BuiltBatchGraph {
            graph: &self.graph,
            workers: &self.pool,
            task_ids: &self.task_ids,
            pruned,
            stats,
        }
    }

    /// Serial phase B over the cached rows.
    fn fill_rows_serial(
        &mut self,
        config: &Config,
        deadline_model: &DeadlineModel,
        profiling: &ProfilingComponent,
        recs: &[&TaskRecord],
        now: f64,
    ) {
        for (u, &wid) in self.pool.iter().enumerate() {
            let row = &self.rows[self.row_idx[u] as usize];
            // Mirrors the cold builder: a vanished profile leaves the
            // row edgeless.
            let Ok(profile) = profiling.profile(wid) else {
                debug_assert!(false, "phase-A {wid} vanished from the registry");
                continue;
            };
            Self::row_edges_gated(
                config,
                deadline_model,
                row,
                profile,
                recs,
                now,
                &mut self.per_row[u],
            );
        }
    }

    /// Phase B over scoped threads, chunked like
    /// [`GraphBuilder::instantiate_parallel`]; rows land in the same
    /// per-row buffers, so the merged graph is bit-identical to serial.
    fn fill_rows_parallel(
        &mut self,
        config: &Config,
        deadline_model: &DeadlineModel,
        profiling: &ProfilingComponent,
        recs: &[&TaskRecord],
        now: f64,
        threads: usize,
    ) {
        let n = self.pool.len();
        let rows: Vec<&CachedRow> = self
            .row_idx
            .iter()
            .map(|&slot| &self.rows[slot as usize])
            .collect();
        let profiles: Vec<Option<&WorkerProfile>> = self
            .pool
            .iter()
            .map(|&wid| profiling.profile(wid).ok())
            .collect();
        let chunk = crate::par::chunk_len(n, threads);
        std::thread::scope(|scope| {
            let recs = &recs;
            for ((row_chunk, profile_chunk), out_chunk) in rows
                .chunks(chunk)
                .zip(profiles.chunks(chunk))
                .zip(self.per_row[..n].chunks_mut(chunk))
            {
                scope.spawn(move || {
                    for ((row, profile), out) in row_chunk
                        .iter()
                        .zip(profile_chunk.iter())
                        .zip(out_chunk.iter_mut())
                    {
                        let Some(profile) = *profile else {
                            continue;
                        };
                        Self::row_edges_gated(config, deadline_model, row, profile, recs, now, out);
                    }
                });
            }
        });
    }

    /// The gated per-row kernel: identical to [`GraphBuilder::row_edges`]
    /// except that Eq. (3) is answered by the memoized [`EdgeGate`] when
    /// it can ([`EdgeGate::classify`]), falling back to the exact CCDF
    /// evaluation on the (provably narrow) ambiguous band.
    fn row_edges_gated(
        config: &Config,
        deadline_model: &DeadlineModel,
        row: &CachedRow,
        profile: &WorkerProfile,
        recs: &[&TaskRecord],
        now: f64,
        out: &mut RowScratch,
    ) {
        for (v, rec) in recs.iter().enumerate() {
            if !profile.accepts_reward(rec.task.reward) {
                out.pruned += 1;
                continue;
            }
            let weight = if row.in_training {
                1.0
            } else {
                config.weight.evaluate(profile, &rec.task)
            };
            if let Some(m) = &row.model {
                let ttd = rec.remaining_time(now);
                let keep = match row.gate.as_ref().and_then(|g| g.classify(ttd)) {
                    Some(keep) => {
                        out.memo_hits += 1;
                        keep
                    }
                    None => deadline_model.should_instantiate_edge(m, ttd),
                };
                if !keep {
                    out.pruned += 1;
                    continue;
                }
            }
            out.edges.push((v as u32, weight));
        }
    }
}

/// Stateless batch scheduler (all state lives in the components).
#[derive(Debug, Default, Clone, Copy)]
pub struct SchedulingComponent;

impl SchedulingComponent {
    /// Builds the assignment graph. Returns the graph plus the
    /// worker/task index maps and the number of pruned edges.
    ///
    /// `now` is the assignment timepoint used for `TimeToDeadline`
    /// (assignments made by this batch start now).
    ///
    /// Convenience wrapper over the two [`GraphBuilder`] phases.
    pub fn build_graph(
        config: &Config,
        profiling: &mut ProfilingComponent,
        tasks: &TaskManagementComponent,
        now: f64,
    ) -> (BipartiteGraph, Vec<WorkerId>, Vec<TaskId>, usize) {
        GraphBuilder::prepare(config, profiling).instantiate(profiling, tasks, now)
    }

    /// The matching stage over an already-built graph: runs the
    /// engine's (cached) matcher and assembles the [`BatchResult`].
    #[allow(clippy::too_many_arguments)]
    pub fn match_built(
        config: &Config,
        engine: &mut MatcherEngine,
        graph: &BipartiteGraph,
        workers: &[WorkerId],
        task_ids: &[TaskId],
        pruned: usize,
        open_tasks: usize,
        rng: &mut dyn RngCore,
    ) -> BatchResult {
        let mut ctx = MatchContext::new(rng, graph.n_edges());
        let matching = engine.assign(graph, &mut ctx);
        let assignments = matching
            .pairs
            .iter()
            .map(|&(u, v, _)| (workers[u.0 as usize], task_ids[v.0 as usize]))
            .collect();
        let region_cost_units = region_cost_units(
            &config.matcher,
            open_tasks,
            workers.len(),
            task_ids.len(),
            matching.cost_units,
        );
        BatchResult {
            assignments,
            total_weight: matching.total_weight,
            cost_units: matching.cost_units,
            region_cost_units,
            matcher_name: engine.name(),
            graph_shape: (graph.n_workers(), graph.n_tasks(), graph.n_edges()),
            pruned_edges: pruned,
        }
    }

    /// Runs one batch — graph construction + matching — reusing the
    /// caller's [`MatcherEngine`] across batches. Does **not** mutate
    /// component state beyond the phase-A model refits; the server
    /// applies the assignments so it can also charge the modelled
    /// matching latency.
    pub fn run_batch_with_engine(
        config: &Config,
        engine: &mut MatcherEngine,
        profiling: &mut ProfilingComponent,
        tasks: &TaskManagementComponent,
        now: f64,
        rng: &mut dyn RngCore,
    ) -> BatchResult {
        let (graph, workers, task_ids, pruned) = Self::build_graph(config, profiling, tasks, now);
        Self::match_built(
            config,
            engine,
            &graph,
            &workers,
            &task_ids,
            pruned,
            tasks.open_count(),
            rng,
        )
    }

    /// [`SchedulingComponent::run_batch_with_engine`] with a throwaway
    /// engine — for one-off batches and tests.
    pub fn run_batch(
        config: &Config,
        profiling: &mut ProfilingComponent,
        tasks: &TaskManagementComponent,
        now: f64,
        rng: &mut dyn RngCore,
    ) -> BatchResult {
        let mut engine = MatcherEngine::new(config.matcher.spec());
        Self::run_batch_with_engine(config, &mut engine, profiling, tasks, now, rng)
    }
}

/// Compute cost over the maintained region graph.
///
/// Sec. III-C keeps the bipartite graph over *all* open tasks in the
/// region (vertices leave only on completion), so each batch's work
/// scales with the full graph `E_region = V_open · |pool|`, not just the
/// unassigned subgraph the matching ultimately selects from:
///
/// * REACT/Metropolis: `c · E_region` (the paper's `O(c·E)` bound);
/// * Greedy: `V_open · E_region` (the paper's `O(V·E)` bound) — the
///   quadratic-in-backlog growth behind its Fig. 5/9 collapse;
/// * Hungarian: `n³` on the padded region graph;
/// * Auction: the reported bids, rescaled from the batch subgraph to the
///   region graph;
/// * Traditional: one portal lookup per assigned task (no graph at all).
pub fn region_cost_units(
    policy: &MatcherPolicy,
    open_tasks: usize,
    pool_size: usize,
    batch_tasks: usize,
    batch_cost_units: f64,
) -> f64 {
    let v = open_tasks.max(batch_tasks) as f64;
    let e_region = v * pool_size as f64;
    match *policy {
        MatcherPolicy::React { cycles } | MatcherPolicy::Metropolis { cycles } => {
            cycles as f64 * e_region
        }
        MatcherPolicy::ReactAdaptive { kappa } => (kappa * e_region).ceil().max(1.0) * e_region,
        MatcherPolicy::Greedy => v * e_region,
        MatcherPolicy::Traditional => batch_tasks as f64,
        MatcherPolicy::Hungarian => {
            let n = v.max(pool_size as f64);
            n * n * n
        }
        MatcherPolicy::Auction => {
            let batch_edges = (batch_tasks * pool_size).max(1) as f64;
            batch_cost_units * (e_region / batch_edges).max(1.0)
        }
        MatcherPolicy::MaxCardinality => e_region * v.max(pool_size as f64).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatcherPolicy;
    use crate::ids::TaskCategory;
    use crate::task::Task;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use react_geo::GeoPoint;

    fn here() -> GeoPoint {
        GeoPoint::new(37.98, 23.72)
    }

    fn task(id: u64, deadline: f64) -> Task {
        Task::new(TaskId(id), here(), deadline, 0.05, TaskCategory(0), "t")
    }

    fn setup(n_workers: u64, n_tasks: u64) -> (ProfilingComponent, TaskManagementComponent) {
        let mut p = ProfilingComponent::default();
        for i in 0..n_workers {
            p.register(WorkerId(i), here()).unwrap();
        }
        let mut tm = TaskManagementComponent::new();
        for i in 0..n_tasks {
            tm.submit(task(i, 60.0), 0.0).unwrap();
        }
        (p, tm)
    }

    /// Marks a worker as past training with a known profile.
    fn season_worker(p: &mut ProfilingComponent, id: WorkerId, exec_times: &[f64]) {
        for &t in exec_times {
            p.record_assignment(id).unwrap();
            p.record_completion(id, TaskCategory(0), t, true).unwrap();
        }
    }

    #[test]
    fn training_workers_get_full_edges_with_max_weight() {
        let config = Config::paper_defaults();
        let (mut p, tm) = setup(3, 4);
        let (graph, workers, tasks, pruned) =
            SchedulingComponent::build_graph(&config, &mut p, &tm, 0.0);
        assert_eq!(workers.len(), 3);
        assert_eq!(tasks.len(), 4);
        assert_eq!(graph.n_edges(), 12, "training ⇒ no pruning");
        assert_eq!(pruned, 0);
        assert!(graph.edges().iter().all(|e| e.weight == 1.0));
    }

    #[test]
    fn eq3_pruning_drops_hopeless_edges() {
        let config = Config::paper_defaults();
        let (mut p, mut tm) = setup(1, 0);
        // Season worker 0 with slow history: k_min = 50 s.
        season_worker(&mut p, WorkerId(0), &[50.0, 80.0, 120.0]);
        // A task with only 10 s to its deadline is hopeless for them.
        tm.submit(task(100, 10.0), 0.0).unwrap();
        // A task with a huge window stays feasible.
        tm.submit(task(101, 10_000.0), 0.0).unwrap();
        let (graph, _, tasks, pruned) = SchedulingComponent::build_graph(&config, &mut p, &tm, 0.0);
        assert_eq!(pruned, 1);
        assert_eq!(graph.n_edges(), 1);
        assert_eq!(tasks.len(), 2);
        let edge = &graph.edges()[0];
        assert_eq!(tasks[edge.task.0 as usize], TaskId(101));
    }

    #[test]
    fn traditional_policy_skips_model_entirely() {
        let mut config = Config::with_matcher(MatcherPolicy::Traditional);
        config.training_assignments = 0;
        let (mut p, mut tm) = setup(1, 0);
        season_worker(&mut p, WorkerId(0), &[50.0, 80.0, 120.0]);
        tm.submit(task(100, 10.0), 0.0).unwrap();
        let (graph, _, _, pruned) = SchedulingComponent::build_graph(&config, &mut p, &tm, 0.0);
        assert_eq!(pruned, 0, "traditional never prunes");
        assert_eq!(graph.n_edges(), 1);
    }

    #[test]
    fn seasoned_weight_uses_accuracy() {
        let mut config = Config::paper_defaults();
        config.training_assignments = 0;
        let (mut p, tm) = setup(1, 2);
        // 1 positive out of 2 → accuracy 0.5; fast worker so no pruning.
        p.record_completion(WorkerId(0), TaskCategory(0), 1.0, true)
            .unwrap();
        p.record_completion(WorkerId(0), TaskCategory(0), 1.5, false)
            .unwrap();
        p.record_completion(WorkerId(0), TaskCategory(0), 1.2, true)
            .unwrap();
        let (graph, _, _, _) = SchedulingComponent::build_graph(&config, &mut p, &tm, 0.0);
        assert!(!graph.is_empty());
        for e in graph.edges() {
            assert!((e.weight - 2.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn reward_range_prunes_underpaying_tasks() {
        let config = Config::paper_defaults();
        let (mut p, mut tm) = setup(1, 0);
        p.set_reward_range(WorkerId(0), Some((0.5, 2.0))).unwrap();
        // Default test task pays 0.05 — outside the range.
        tm.submit(task(1, 60.0), 0.0).unwrap();
        // A generous task pays 1.0 — inside.
        tm.submit(
            Task::new(TaskId(2), here(), 60.0, 1.0, TaskCategory(0), "well-paid"),
            0.0,
        )
        .unwrap();
        let (graph, _, tasks, pruned) = SchedulingComponent::build_graph(&config, &mut p, &tm, 0.0);
        assert_eq!(pruned, 1);
        assert_eq!(graph.n_edges(), 1);
        let edge = &graph.edges()[0];
        assert_eq!(tasks[edge.task.0 as usize], TaskId(2));
        // Clearing the range restores both edges.
        p.set_reward_range(WorkerId(0), None).unwrap();
        let (graph, _, _, pruned) = SchedulingComponent::build_graph(&config, &mut p, &tm, 0.0);
        assert_eq!(pruned, 0);
        assert_eq!(graph.n_edges(), 2);
    }

    #[test]
    fn run_batch_assigns_each_task_once() {
        let config = Config::paper_defaults();
        let (mut p, tm) = setup(10, 5);
        let mut rng = SmallRng::seed_from_u64(1);
        let result = SchedulingComponent::run_batch(&config, &mut p, &tm, 0.0, &mut rng);
        assert_eq!(result.matcher_name, "react");
        assert!(result.assignments.len() <= 5);
        let mut seen_tasks = std::collections::HashSet::new();
        let mut seen_workers = std::collections::HashSet::new();
        for (w, t) in &result.assignments {
            assert!(seen_tasks.insert(*t));
            assert!(seen_workers.insert(*w));
        }
        assert_eq!(result.graph_shape, (10, 5, 50));
    }

    #[test]
    fn run_batch_with_busy_workers_only_uses_available() {
        let config = Config::paper_defaults();
        let (mut p, tm) = setup(3, 3);
        p.record_assignment(WorkerId(0)).unwrap(); // busy
        let mut rng = SmallRng::seed_from_u64(2);
        let result = SchedulingComponent::run_batch(&config, &mut p, &tm, 0.0, &mut rng);
        assert!(result.assignments.iter().all(|(w, _)| *w != WorkerId(0)));
        assert_eq!(result.graph_shape.0, 2);
    }

    #[test]
    fn region_cost_units_follow_complexity_laws() {
        // 100 open tasks over a 50-worker pool → E_region = 5000.
        let (open, pool, batch) = (100usize, 50usize, 20usize);
        let e_region = 5000.0;
        assert_eq!(
            region_cost_units(
                &MatcherPolicy::React { cycles: 1000 },
                open,
                pool,
                batch,
                0.0
            ),
            1000.0 * e_region
        );
        assert_eq!(
            region_cost_units(
                &MatcherPolicy::Metropolis { cycles: 500 },
                open,
                pool,
                batch,
                0.0
            ),
            500.0 * e_region
        );
        assert_eq!(
            region_cost_units(&MatcherPolicy::Greedy, open, pool, batch, 0.0),
            100.0 * e_region
        );
        assert_eq!(
            region_cost_units(&MatcherPolicy::Traditional, open, pool, batch, 0.0),
            batch as f64
        );
        assert_eq!(
            region_cost_units(&MatcherPolicy::Hungarian, open, pool, batch, 0.0),
            100.0f64.powi(3)
        );
        assert_eq!(
            region_cost_units(&MatcherPolicy::MaxCardinality, open, pool, batch, 0.0),
            e_region * 10.0
        );
        // Auction rescales reported bids from the batch to the region
        // graph: 5000 / (20*50) = 5x.
        assert_eq!(
            region_cost_units(&MatcherPolicy::Auction, open, pool, batch, 40.0),
            200.0
        );
        // Open count can never undershoot the batch size.
        assert_eq!(
            region_cost_units(&MatcherPolicy::Greedy, 0, pool, batch, 0.0),
            20.0 * (20.0 * 50.0)
        );
    }

    #[test]
    fn greedy_region_cost_grows_quadratically_with_backlog() {
        // The mechanism behind the paper's Fig. 9 collapse.
        let small = region_cost_units(&MatcherPolicy::Greedy, 100, 500, 10, 0.0);
        let big = region_cost_units(&MatcherPolicy::Greedy, 200, 500, 10, 0.0);
        assert!((big / small - 4.0).abs() < 1e-9, "ratio {}", big / small);
        // REACT grows only linearly.
        let small = region_cost_units(&MatcherPolicy::React { cycles: 1000 }, 100, 500, 10, 0.0);
        let big = region_cost_units(&MatcherPolicy::React { cycles: 1000 }, 200, 500, 10, 0.0);
        assert!((big / small - 2.0).abs() < 1e-9);
    }

    #[test]
    fn graph_builder_phases_match_combined_entry_point() {
        let config = Config::paper_defaults();
        let (mut p, mut tm) = setup(6, 5);
        season_worker(&mut p, WorkerId(0), &[50.0, 80.0, 120.0]);
        season_worker(&mut p, WorkerId(1), &[1.0, 1.5, 2.0]);
        tm.submit(task(100, 10.0), 0.0).unwrap();
        let builder = GraphBuilder::prepare(&config, &mut p);
        assert_eq!(builder.rows().len(), 6);
        let (staged, workers_a, tasks_a, pruned_a) = builder.instantiate_serial(&p, &tm, 0.0);
        let (combined, workers_b, tasks_b, pruned_b) =
            SchedulingComponent::build_graph(&config, &mut p, &tm, 0.0);
        assert_eq!(staged.edges(), combined.edges());
        assert_eq!(workers_a, workers_b);
        assert_eq!(tasks_a, tasks_b);
        assert_eq!(pruned_a, pruned_b);
    }

    #[test]
    fn parallel_instantiation_is_bit_identical_to_serial() {
        let config = Config::paper_defaults();
        let (mut p, mut tm) = setup(40, 12);
        // A mix of training, seasoned-fast and seasoned-slow workers so
        // both pruning rules and the training rule all fire.
        for w in 0..10 {
            season_worker(&mut p, WorkerId(w), &[50.0, 80.0, 120.0]);
        }
        for w in 10..20 {
            season_worker(&mut p, WorkerId(w), &[1.0, 1.5, 2.0]);
        }
        p.set_reward_range(WorkerId(21), Some((0.5, 2.0))).unwrap();
        tm.submit(task(100, 8.0), 0.0).unwrap();
        let builder = GraphBuilder::prepare(&config, &mut p);
        let (serial, sw, st, sp) = builder.instantiate_serial(&p, &tm, 0.0);
        for threads in [1, 2, 3, 8] {
            let (par, pw, pt, pp) = builder.instantiate_parallel(&p, &tm, 0.0, threads);
            assert_eq!(serial.edges(), par.edges(), "threads={threads}");
            assert_eq!(sw, pw);
            assert_eq!(st, pt);
            assert_eq!(sp, pp);
        }
    }

    #[test]
    fn engine_backed_batches_match_throwaway_batches() {
        use react_matching::MatcherEngine;
        let config = Config::paper_defaults();
        let (mut p, tm) = setup(10, 5);
        let mut engine = MatcherEngine::new(config.matcher.spec());
        let mut rng_a = SmallRng::seed_from_u64(11);
        let mut rng_b = SmallRng::seed_from_u64(11);
        for _ in 0..3 {
            let cached = SchedulingComponent::run_batch_with_engine(
                &config,
                &mut engine,
                &mut p,
                &tm,
                0.0,
                &mut rng_a,
            );
            let fresh = SchedulingComponent::run_batch(&config, &mut p, &tm, 0.0, &mut rng_b);
            assert_eq!(cached.assignments, fresh.assignments);
            assert_eq!(cached.total_weight, fresh.total_weight);
            assert_eq!(cached.matcher_name, fresh.matcher_name);
        }
        assert_eq!(engine.rebuilds(), 1, "fixed cycles ⇒ one build");
    }

    /// Seasons a mixed pool (training / seasoned-fast / seasoned-slow /
    /// reward-constrained) with a mixed task queue so every pruning rule
    /// fires, then returns the components.
    fn mixed_setup() -> (Config, ProfilingComponent, TaskManagementComponent) {
        let config = Config::paper_defaults();
        let (mut p, mut tm) = setup(40, 12);
        for w in 0..10 {
            season_worker(&mut p, WorkerId(w), &[50.0, 80.0, 120.0]);
        }
        for w in 10..20 {
            season_worker(&mut p, WorkerId(w), &[1.0, 1.5, 2.0]);
        }
        p.set_reward_range(WorkerId(21), Some((0.5, 2.0))).unwrap();
        tm.submit(task(100, 8.0), 0.0).unwrap();
        (config, p, tm)
    }

    #[test]
    fn scratch_build_is_bit_identical_to_cold_build() {
        let (config, mut p, tm) = mixed_setup();
        let mut scratch = BatchScratch::new();
        for now in [0.0, 1.0, 5.0] {
            let (cold, cw, ct, cp) = {
                let b = GraphBuilder::prepare(&config, &mut p);
                b.instantiate_serial(&p, &tm, now)
            };
            let built = scratch.build(&config, &mut p, &tm, now);
            assert_eq!(built.graph.edges(), cold.edges(), "now={now}");
            assert_eq!(built.workers, &cw[..]);
            assert_eq!(built.task_ids, &ct[..]);
            assert_eq!(built.pruned, cp);
        }
    }

    #[test]
    fn scratch_reuses_rows_until_profiles_mutate() {
        let (config, mut p, tm) = mixed_setup();
        let mut scratch = BatchScratch::new();
        let first = scratch.build(&config, &mut p, &tm, 0.0).stats;
        assert_eq!(first.rows_reused, 0, "cold scratch reuses nothing");
        assert!(first.cdf_memo_hits > 0, "gates should answer most edges");
        let second = scratch.build(&config, &mut p, &tm, 0.0).stats;
        assert_eq!(second.rows_reused, second.rows_total, "steady state");
        assert!(second.bytes_reused > 0, "arenas carry over");
        // One profile mutation invalidates exactly that row.
        p.record_completion(WorkerId(5), TaskCategory(0), 60.0, true)
            .unwrap();
        let third = scratch.build(&config, &mut p, &tm, 0.0).stats;
        assert_eq!(third.rows_reused, third.rows_total - 1);
    }

    #[test]
    fn scratch_config_change_invalidates_every_row() {
        let (config, mut p, tm) = mixed_setup();
        let mut scratch = BatchScratch::new();
        scratch.build(&config, &mut p, &tm, 0.0);
        let mut config2 = config.clone();
        config2.training_assignments += 1;
        let stats = scratch.build(&config2, &mut p, &tm, 0.0).stats;
        assert_eq!(stats.rows_reused, 0, "new config ⇒ full recompute");
        let stats = scratch.build(&config2, &mut p, &tm, 0.0).stats;
        assert_eq!(stats.rows_reused, stats.rows_total);
    }

    #[test]
    fn scratch_parallel_fill_matches_serial_fill() {
        let (config, mut p, tm) = mixed_setup();
        let mut serial = BatchScratch::new();
        serial.set_threads(Some(1));
        let (edges, pruned) = {
            let built = serial.build(&config, &mut p, &tm, 0.0);
            (built.graph.edges().to_vec(), built.pruned)
        };
        for threads in [2, 3, 8] {
            let mut par = BatchScratch::new();
            par.set_threads(Some(threads));
            let built = par.build(&config, &mut p, &tm, 0.0);
            assert_eq!(built.graph.edges(), &edges[..], "threads={threads}");
            assert_eq!(built.pruned, pruned);
        }
    }

    #[test]
    fn scratch_handles_worker_churn() {
        let (config, mut p, tm) = mixed_setup();
        let mut scratch = BatchScratch::new();
        scratch.build(&config, &mut p, &tm, 0.0);
        // Deregister a cached worker, then re-register them cold: the
        // fresh epoch must not collide with the cached one.
        p.deregister(WorkerId(12)).unwrap();
        let built = scratch.build(&config, &mut p, &tm, 0.0);
        assert!(!built.workers.contains(&WorkerId(12)));
        p.register(WorkerId(12), here()).unwrap();
        let built = scratch.build(&config, &mut p, &tm, 0.0);
        let (cold, ..) = SchedulingComponent::build_graph(&config, &mut p, &tm, 0.0);
        assert_eq!(built.graph.edges(), cold.edges());
    }

    #[test]
    fn empty_inputs_produce_empty_batch() {
        let config = Config::paper_defaults();
        let (mut p, tm) = setup(0, 3);
        let mut rng = SmallRng::seed_from_u64(3);
        let result = SchedulingComponent::run_batch(&config, &mut p, &tm, 0.0, &mut rng);
        assert!(result.assignments.is_empty());
        let (mut p, tm) = setup(3, 0);
        let result = SchedulingComponent::run_batch(&config, &mut p, &tm, 0.0, &mut rng);
        assert!(result.assignments.is_empty());
    }
}
