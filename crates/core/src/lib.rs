//! # react-core — the REACT middleware
//!
//! Reproduction of the system described in *"Crowdsourcing under
//! Real-Time Constraints"* (Boutsis & Kalogeraki, IPDPS 2013): a
//! middleware that assigns crowdsourcing tasks to human workers so that
//! soft real-time deadlines are met and high-quality results returned.
//!
//! A [`ReactServer`] owns one geographic region and composes the paper's
//! four components (Sec. III-A):
//!
//! * [`ProfilingComponent`] — per-worker location, availability, accuracy
//!   per task category and execution-time history (with the power-law
//!   estimator from `react-prob`).
//! * [`TaskManagementComponent`] — every task's state: unassigned /
//!   assigned (to whom, since when) / completed / expired, plus remaining
//!   time to deadline.
//! * [`SchedulingComponent`] — builds the weighted bipartite graph over
//!   (available workers × unassigned tasks), pruning edges via the
//!   Eq. (3) probability threshold and boosting new workers for their
//!   first `z` training assignments, then runs the configured
//!   [`MatcherPolicy`] (REACT / Metropolis / Greedy / Traditional /
//!   Hungarian / Auction).
//! * [`DynamicAssignmentComponent`] — evaluates Eq. (2) on every in-flight
//!   assignment and pulls tasks back from workers that will likely miss
//!   the deadline.
//!
//! Drive the server by calling [`ReactServer::tick`] with the current
//! (simulated or wall-clock) time; it returns the [`TickOutcome`] —
//! fresh assignments, reassignment recalls, expirations and the modelled
//! scheduler compute time — for the embedding environment (the DES in
//! `react-crowd`, the threaded runtime in `react-runtime`, or your own
//! integration) to act on.
//!
//! ```
//! use react_core::prelude::*;
//!
//! let mut config = Config::paper_defaults();
//! config.batch = BatchTrigger { min_unassigned: 1, period: None }; // batch eagerly
//! let mut server = ServerBuilder::new(config).seed(42).build().unwrap();
//! let here = GeoPoint::new(37.98, 23.72);
//! server.register_worker(WorkerId(1), here);
//! server.submit_task(Task::new(TaskId(1), here, 60.0, 0.05, TaskCategory(0), "congestion on A?"), 0.0);
//! let outcome = server.tick(0.0);
//! assert_eq!(outcome.assignments, vec![(WorkerId(1), TaskId(1))]);
//! ```
//!
//! Observability: pass any [`react_obs::Observer`] sink to
//! [`ServerBuilder::observer`] to receive per-stage spans, matcher
//! cycle/flip counters and latency histograms; the default
//! [`react_obs::NullObserver`] is provably zero-cost (schedules are
//! bit-identical with or without it).

#![warn(missing_docs)]

pub mod config;
pub mod dynamic;
pub mod error;
pub mod events;
pub mod ids;
pub mod par;
pub mod persist;
pub mod prelude;
pub mod profiling;
pub mod scheduling;
pub mod server;
pub mod task;
pub mod task_mgmt;
pub mod weight;

pub use config::{BatchTrigger, Config, LatencyModelKind, MatcherPolicy, RecoveryConfig};
pub use dynamic::DynamicAssignmentComponent;
pub use error::{CoreError, ReactError};
pub use events::{verify_lifecycles, AuditLog, TaskEvent, TaskEventKind};
pub use ids::{TaskCategory, TaskId, WorkerId};
pub use persist::{export_profiles, import_profiles, PersistError};
pub use profiling::{Availability, ProfilingComponent, WorkerProfile};
pub use scheduling::{
    BatchResult, BatchScratch, BuildStats, BuiltBatchGraph, GraphBuilder, SchedulingComponent,
    WorkerRow,
};
pub use server::{CompletionOutcome, ReactServer, ServerBuilder, StageTimings, TickOutcome};
pub use task::{Task, TaskState};
pub use task_mgmt::TaskManagementComponent;
pub use weight::WeightFunction;
