//! Middleware configuration.

use crate::weight::WeightFunction;
use react_matching::{Matcher, MatcherSpec};
use react_prob::{DeadlineModelConfig, EstimatorConfig};

/// Which latency distribution the deadline model evaluates Eq. (2)/(3)
/// against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModelKind {
    /// The paper's power-law MLE fit.
    PowerLaw,
    /// The distribution-free empirical CCDF of the observed samples.
    Empirical,
    /// Power law when its KS statistic is at most the threshold,
    /// empirical otherwise (per worker, re-evaluated as samples arrive).
    Auto {
        /// Maximum acceptable KS statistic for the parametric fit.
        ks_threshold: f64,
    },
}

/// Which matching algorithm the Scheduling Component runs per batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatcherPolicy {
    /// The paper's Algorithm 1 with a fixed cycle budget.
    React {
        /// Flip cycles per batch (paper: 1000).
        cycles: usize,
    },
    /// REACT with the adaptive cycle count `c = ⌈κ·|E|⌉` the paper
    /// suggests as future work.
    ReactAdaptive {
        /// Cycles per edge.
        kappa: f64,
    },
    /// The Metropolis baseline at a fixed cycle budget.
    Metropolis {
        /// Flip cycles per batch.
        cycles: usize,
    },
    /// The `O(V·E)` greedy baseline.
    Greedy,
    /// AMT-style uniform random assignment (no profiling, no model).
    Traditional,
    /// Exact Hungarian optimum (offline reference).
    Hungarian,
    /// ε-auction extension.
    Auction,
    /// Maximum-cardinality extension (Hopcroft–Karp): assign as many
    /// tasks as possible, ignoring weights — the "throughput-optimal"
    /// objective of classical systems.
    MaxCardinality,
}

impl MatcherPolicy {
    /// The matching-layer descriptor of this policy. Algorithm dispatch
    /// lives behind it in `react_matching::engine`; this enum keeps only
    /// the *scheduler-level* semantics (model use, availability).
    pub fn spec(&self) -> MatcherSpec {
        match *self {
            MatcherPolicy::React { cycles } => MatcherSpec::React { cycles },
            MatcherPolicy::ReactAdaptive { kappa } => MatcherSpec::ReactAdaptive { kappa },
            MatcherPolicy::Metropolis { cycles } => MatcherSpec::Metropolis { cycles },
            MatcherPolicy::Greedy => MatcherSpec::Greedy,
            MatcherPolicy::Traditional => MatcherSpec::Traditional,
            MatcherPolicy::Hungarian => MatcherSpec::Hungarian,
            MatcherPolicy::Auction => MatcherSpec::Auction,
            MatcherPolicy::MaxCardinality => MatcherSpec::MaxCardinality,
        }
    }

    /// Instantiates the matcher. `n_edges` lets the adaptive policy size
    /// its cycle budget to the batch at hand. Batch loops should prefer
    /// a [`react_matching::MatcherEngine`] over per-batch builds.
    pub fn build(&self, n_edges: usize) -> Box<dyn Matcher> {
        self.spec().build(n_edges)
    }

    /// Whether this policy uses the probabilistic deadline model
    /// (edge pruning + in-flight reassignment). The paper pairs the
    /// model with REACT *and* Greedy, but not with the Traditional
    /// system.
    pub fn uses_probabilistic_model(&self) -> bool {
        !matches!(self, MatcherPolicy::Traditional)
    }

    /// Whether this policy assigns only to *available* workers.
    ///
    /// The Traditional comparator simulates AMT-style marketplaces,
    /// which have no availability signal: a task lands on a uniformly
    /// random worker who may already be busy and queues behind their
    /// current work — the main reason the paper's traditional system
    /// misses roughly half its deadlines.
    pub fn uses_availability(&self) -> bool {
        !matches!(self, MatcherPolicy::Traditional)
    }

    /// Stable name for reports (matches `Matcher::name`).
    pub fn name(&self) -> &'static str {
        self.spec().name()
    }
}

/// When the Scheduling Component starts a new batch. *"Our solution works
/// in batches, which are initiated periodically, or if the number of
/// unassigned tasks has exceeded a boundary."*
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchTrigger {
    /// Fire when at least this many tasks are unassigned (paper: > 10,
    /// i.e. a threshold of 11; we expose the inclusive bound).
    pub min_unassigned: usize,
    /// Also fire when this many seconds elapsed since the last batch and
    /// any task is waiting (`None` = threshold only, as in Fig. 5).
    pub period: Option<f64>,
}

impl BatchTrigger {
    /// Decides whether to fire given the current queue length and the
    /// time since the last batch.
    pub fn should_fire(&self, unassigned: usize, since_last_batch: f64) -> bool {
        if unassigned == 0 {
            return false;
        }
        if unassigned >= self.min_unassigned {
            return true;
        }
        match self.period {
            Some(p) => since_last_batch >= p,
            None => false,
        }
    }
}

/// Failure-aware recovery knobs: the per-assignment timeout ladder,
/// worker suspicion, and graceful degradation under pool collapse.
///
/// The ladder is orthogonal to the Eq. (2) model: Eq. (2) predicts a
/// miss from a *healthy* worker's latency profile, while the ladder
/// catches workers that stopped responding entirely (silent abandonment,
/// message loss) — cases no latency model can see. The `attempt`-th
/// assignment of a task is given
/// `min(progress_timeout · backoff_factor^attempt, max_timeout)` seconds
/// to show progress before it is recalled and requeued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Base progress deadline (seconds) for a task's first assignment.
    /// `None` disables the whole ladder (the paper's baseline behaviour).
    pub progress_timeout: Option<f64>,
    /// Multiplier applied to the progress deadline per reassignment
    /// (capped backoff; must be ≥ 1).
    pub backoff_factor: f64,
    /// Upper bound on the laddered timeout (seconds).
    pub max_timeout: f64,
    /// Progress timeouts (without an intervening completion) before a
    /// worker is marked suspect; 0 never suspects.
    pub suspect_after: u32,
    /// Multiplicative decay applied to a suspect worker's profile
    /// weight, in `(0, 1]` (1.0 = no decay).
    pub suspect_decay: f64,
    /// When fewer than this many workers are online, shed queued tasks
    /// (lowest reward first) beyond `shed_queue_cap`; 0 never sheds.
    pub pool_floor: usize,
    /// Maximum queued tasks kept while the pool is below the floor.
    pub shed_queue_cap: usize,
}

impl RecoveryConfig {
    /// Recovery fully disabled — the paper's baseline behaviour.
    pub fn disabled() -> Self {
        RecoveryConfig {
            progress_timeout: None,
            backoff_factor: 2.0,
            max_timeout: 600.0,
            suspect_after: 3,
            suspect_decay: 0.8,
            pool_floor: 0,
            shed_queue_cap: 0,
        }
    }

    /// A sensible enabled ladder for chaos runs: recall after
    /// `base_timeout` seconds without progress, double the allowance per
    /// retry up to 4× base, suspect a worker after 3 strikes and decay
    /// its weight by 20 % per strike beyond that.
    pub fn aggressive(base_timeout: f64) -> Self {
        RecoveryConfig {
            progress_timeout: Some(base_timeout),
            backoff_factor: 2.0,
            max_timeout: base_timeout * 4.0,
            suspect_after: 3,
            suspect_decay: 0.8,
            pool_floor: 0,
            shed_queue_cap: 0,
        }
    }

    /// Whether the timeout ladder is active.
    pub fn ladder_enabled(&self) -> bool {
        self.progress_timeout.is_some()
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Full middleware configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Matching algorithm per batch.
    pub matcher: MatcherPolicy,
    /// Edge weight function `F(worker, task)`.
    pub weight: WeightFunction,
    /// Batch trigger policy.
    pub batch: BatchTrigger,
    /// Eq. (2)/(3) thresholds.
    pub deadline: DeadlineModelConfig,
    /// Per-worker execution-time estimator settings (min samples = the
    /// paper's "at least 3 completed tasks").
    pub estimator: EstimatorConfig,
    /// Training rule `z`: a worker's first `z` assignments get maximum
    /// edge weight and bypass pruning, to bootstrap the profile.
    pub training_assignments: u64,
    /// Whether matcher compute time is charged through the calibrated
    /// cost model (`react-matching::CostModel`). Disable to treat
    /// matching as instantaneous (quality-only experiments).
    pub charge_matching_time: bool,
    /// Record every task lifecycle transition in an audit log
    /// ([`crate::AuditLog`]); costs memory proportional to task count.
    pub audit: bool,
    /// Latency distribution used by Eq. (2)/(3) (paper: the power law).
    pub latency_model: LatencyModelKind,
    /// Failure-aware recovery (timeout ladder, suspicion, shedding).
    /// Disabled by default — the paper's evaluation assumes workers
    /// always eventually respond.
    pub recovery: RecoveryConfig,
}

impl Config {
    /// The configuration of the paper's end-to-end evaluation (Sec. V-C):
    /// REACT at 1000 cycles, accuracy weights, batches at > 10 unassigned
    /// tasks, 10 % thresholds, 3-task training.
    pub fn paper_defaults() -> Self {
        Config {
            matcher: MatcherPolicy::React { cycles: 1000 },
            weight: WeightFunction::Accuracy,
            batch: BatchTrigger {
                min_unassigned: 10,
                period: None,
            },
            deadline: DeadlineModelConfig::default(),
            estimator: EstimatorConfig::default(),
            training_assignments: 3,
            charge_matching_time: true,
            audit: false,
            latency_model: LatencyModelKind::PowerLaw,
            recovery: RecoveryConfig::disabled(),
        }
    }

    /// Paper defaults with a different matcher (the comparison harness).
    pub fn with_matcher(matcher: MatcherPolicy) -> Self {
        Config {
            matcher,
            ..Self::paper_defaults()
        }
    }

    /// Checks the configuration for values the scheduler cannot run
    /// with. `ServerBuilder::build` calls this; hand-rolled embeddings
    /// can call it directly.
    pub fn validate(&self) -> Result<(), crate::error::CoreError> {
        let fail = |reason: &str| {
            Err(crate::error::CoreError::InvalidConfig {
                reason: reason.to_string(),
            })
        };
        match self.matcher {
            MatcherPolicy::React { cycles } | MatcherPolicy::Metropolis { cycles }
                if cycles == 0 =>
            {
                return fail("matcher cycle budget must be at least 1");
            }
            MatcherPolicy::ReactAdaptive { kappa } if !kappa.is_finite() || kappa <= 0.0 => {
                return fail("adaptive matcher kappa must be finite and positive");
            }
            _ => {}
        }
        if self.batch.min_unassigned == 0 {
            return fail("batch.min_unassigned must be at least 1");
        }
        if let Some(p) = self.batch.period {
            if !p.is_finite() || p <= 0.0 {
                return fail("batch.period must be finite and positive");
            }
        }
        for (name, v) in [
            (
                "deadline.edge_probability_threshold",
                self.deadline.edge_probability_threshold,
            ),
            (
                "deadline.reassign_threshold",
                self.deadline.reassign_threshold,
            ),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(crate::error::CoreError::InvalidConfig {
                    reason: format!("{name} must be a probability in [0, 1]"),
                });
            }
        }
        if let LatencyModelKind::Auto { ks_threshold } = self.latency_model {
            if !ks_threshold.is_finite() || ks_threshold <= 0.0 {
                return fail("latency_model Auto ks_threshold must be finite and positive");
            }
        }
        let r = &self.recovery;
        if let Some(t) = r.progress_timeout {
            if !t.is_finite() || t <= 0.0 {
                return fail("recovery.progress_timeout must be finite and positive");
            }
            if !r.max_timeout.is_finite() || r.max_timeout < t {
                return fail("recovery.max_timeout must be finite and at least progress_timeout");
            }
        }
        if !r.backoff_factor.is_finite() || r.backoff_factor < 1.0 {
            return fail("recovery.backoff_factor must be finite and at least 1");
        }
        if !r.suspect_decay.is_finite() || r.suspect_decay <= 0.0 || r.suspect_decay > 1.0 {
            return fail("recovery.suspect_decay must be in (0, 1]");
        }
        Ok(())
    }
}

impl Default for Config {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_v() {
        let c = Config::paper_defaults();
        assert_eq!(c.matcher, MatcherPolicy::React { cycles: 1000 });
        assert_eq!(c.batch.min_unassigned, 10);
        assert_eq!(c.deadline.reassign_threshold, 0.1);
        assert_eq!(c.estimator.min_samples, 3);
        assert_eq!(c.training_assignments, 3);
        assert!(c.charge_matching_time);
    }

    #[test]
    fn policy_names_and_model_use() {
        assert_eq!(MatcherPolicy::React { cycles: 1 }.name(), "react");
        assert_eq!(MatcherPolicy::Greedy.name(), "greedy");
        assert_eq!(MatcherPolicy::Traditional.name(), "traditional");
        assert!(MatcherPolicy::Greedy.uses_probabilistic_model());
        assert!(!MatcherPolicy::Traditional.uses_probabilistic_model());
    }

    #[test]
    fn build_produces_matching_names() {
        for policy in [
            MatcherPolicy::React { cycles: 10 },
            MatcherPolicy::ReactAdaptive { kappa: 0.5 },
            MatcherPolicy::Metropolis { cycles: 10 },
            MatcherPolicy::Greedy,
            MatcherPolicy::Traditional,
            MatcherPolicy::Hungarian,
            MatcherPolicy::Auction,
            MatcherPolicy::MaxCardinality,
        ] {
            let m = policy.build(100);
            assert_eq!(m.name(), policy.name());
        }
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_degenerates() {
        assert!(Config::paper_defaults().validate().is_ok());

        let mut c = Config::paper_defaults();
        c.matcher = MatcherPolicy::React { cycles: 0 };
        assert!(c.validate().is_err());

        let mut c = Config::paper_defaults();
        c.matcher = MatcherPolicy::ReactAdaptive { kappa: f64::NAN };
        assert!(c.validate().is_err());

        let mut c = Config::paper_defaults();
        c.batch.min_unassigned = 0;
        assert!(c.validate().is_err());

        let mut c = Config::paper_defaults();
        c.batch.period = Some(-1.0);
        assert!(c.validate().is_err());

        let mut c = Config::paper_defaults();
        c.deadline.reassign_threshold = 1.5;
        assert!(c.validate().is_err());

        let mut c = Config::paper_defaults();
        c.latency_model = LatencyModelKind::Auto { ks_threshold: 0.0 };
        assert!(c.validate().is_err());

        let mut c = Config::paper_defaults();
        c.recovery.progress_timeout = Some(-5.0);
        assert!(c.validate().is_err());

        let mut c = Config::paper_defaults();
        c.recovery = RecoveryConfig::aggressive(30.0);
        c.recovery.max_timeout = 10.0; // below the base timeout
        assert!(c.validate().is_err());

        let mut c = Config::paper_defaults();
        c.recovery.backoff_factor = 0.5;
        assert!(c.validate().is_err());

        let mut c = Config::paper_defaults();
        c.recovery.suspect_decay = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn recovery_defaults_off_and_presets_valid() {
        let r = RecoveryConfig::default();
        assert!(!r.ladder_enabled(), "recovery must default off");
        assert_eq!(
            Config::paper_defaults().recovery,
            RecoveryConfig::disabled()
        );
        let mut c = Config::paper_defaults();
        c.recovery = RecoveryConfig::aggressive(30.0);
        assert!(c.recovery.ladder_enabled());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn batch_trigger_threshold_and_period() {
        let t = BatchTrigger {
            min_unassigned: 10,
            period: Some(5.0),
        };
        assert!(!t.should_fire(0, 100.0), "empty queue never fires");
        assert!(t.should_fire(10, 0.0), "threshold met");
        assert!(!t.should_fire(3, 1.0), "below both conditions");
        assert!(t.should_fire(1, 5.0), "period elapsed with waiting task");
        let threshold_only = BatchTrigger {
            min_unassigned: 10,
            period: None,
        };
        assert!(!threshold_only.should_fire(9, 1e9));
        assert!(threshold_only.should_fire(11, 0.0));
    }
}
