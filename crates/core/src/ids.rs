//! Domain identifiers.

use std::fmt;

/// Identifier of a crowd worker registered with the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u64);

/// Identifier of a submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// A task category (e.g. "traffic estimation", "image labelling").
///
/// The paper's weight function (Eq. 1) is the worker's accuracy *within
/// the task's category*; categories are opaque small integers here and
/// the embedding application owns their meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskCategory(pub u32);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker#{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

impl fmt::Display for TaskCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "category#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        assert!(WorkerId(1) < WorkerId(2));
        assert!(TaskId(5) > TaskId(3));
        let mut set = HashSet::new();
        set.insert(TaskCategory(0));
        set.insert(TaskCategory(0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(WorkerId(7).to_string(), "worker#7");
        assert_eq!(TaskId(9).to_string(), "task#9");
        assert_eq!(TaskCategory(2).to_string(), "category#2");
    }
}
