//! The Profiling Component.
//!
//! Keeps, for every registered worker: geographic location, current
//! availability, per-category feedback statistics (the numerator and
//! denominator of the Eq. 1 accuracy weight), the execution-time history
//! feeding the power-law estimator, and the number of assignments served
//! (for the `z`-training rule). *"Our model follows closely the AMT
//! model, where parameters such as skills and interests are not
//! considered."*

use crate::error::CoreError;
use crate::ids::{TaskCategory, WorkerId};
use react_geo::GeoPoint;
use react_prob::{EstimatorConfig, ExecTimeEstimator, FittedModel, PowerLaw};
use std::collections::BTreeMap;

/// A worker's availability as tracked by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Availability {
    /// Idle and eligible for assignment.
    Available,
    /// Executing a task (one task at a time, per the paper's model).
    Busy,
    /// Departed the system (short connectivity cycles are the norm).
    Offline,
}

/// Per-category feedback tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct CategoryStats {
    finished: u64,
    positive: u64,
}

/// Everything the platform knows about one worker.
#[derive(Debug, Clone)]
pub struct WorkerProfile {
    id: WorkerId,
    location: GeoPoint,
    availability: Availability,
    by_category: BTreeMap<TaskCategory, CategoryStats>,
    estimator: ExecTimeEstimator,
    assignments_served: u64,
    reward_range: Option<(f64, f64)>,
    /// Times the recovery layer flagged this worker for failing progress
    /// deadlines.
    suspicions: u32,
    /// Multiplicative penalty applied to the Eq. (1) accuracy while the
    /// worker is suspect (1.0 = trusted).
    weight_penalty: f64,
    /// Bumped on every profile mutation that can change scheduling
    /// output (availability, samples, feedback, reward range, penalty,
    /// location). The batch scratch keys its phase-A row cache on this,
    /// so an unchanged epoch proves the cached row is still valid.
    epoch: u64,
}

impl WorkerProfile {
    fn new(id: WorkerId, location: GeoPoint, estimator_config: EstimatorConfig) -> Self {
        WorkerProfile {
            id,
            location,
            availability: Availability::Available,
            by_category: BTreeMap::new(),
            estimator: ExecTimeEstimator::new(estimator_config),
            assignments_served: 0,
            reward_range: None,
            suspicions: 0,
            weight_penalty: 1.0,
            epoch: 0,
        }
    }

    /// The profile's mutation epoch (see the field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The worker's id.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// Registered geographic location.
    pub fn location(&self) -> GeoPoint {
        self.location
    }

    /// Current availability.
    pub fn availability(&self) -> Availability {
        self.availability
    }

    /// Total assignments this worker has received (including ones later
    /// recalled); drives the first-`z` training rule.
    pub fn assignments_served(&self) -> u64 {
        self.assignments_served
    }

    /// Completed tasks across all categories.
    pub fn total_finished(&self) -> u64 {
        self.by_category.values().map(|s| s.finished).sum()
    }

    /// Positive feedbacks across all categories.
    pub fn total_positive(&self) -> u64 {
        self.by_category.values().map(|s| s.positive).sum()
    }

    /// Eq. (1) accuracy for `category`:
    /// `Σ PositiveTask / Σ FinishedTask` within the category.
    ///
    /// Fallback ladder for sparse history (the paper trains new workers
    /// at maximum weight): no history in the category → overall accuracy;
    /// no history at all → 1.0 (optimistic).
    /// A suspect worker's tally is additionally scaled by the recovery
    /// layer's [`weight_penalty`](Self::weight_penalty), so repeatedly
    /// unresponsive workers sink in the matching order without being
    /// evicted outright.
    pub fn accuracy(&self, category: TaskCategory) -> f64 {
        let raw = if let Some(s) = self.by_category.get(&category) {
            if s.finished > 0 {
                s.positive as f64 / s.finished as f64
            } else {
                self.overall_accuracy()
            }
        } else {
            self.overall_accuracy()
        };
        raw * self.weight_penalty
    }

    fn overall_accuracy(&self) -> f64 {
        let finished = self.total_finished();
        if finished > 0 {
            self.total_positive() as f64 / finished as f64
        } else {
            1.0
        }
    }

    /// Times the recovery layer marked this worker suspect.
    pub fn suspicions(&self) -> u32 {
        self.suspicions
    }

    /// Current multiplicative penalty on the worker's accuracy weight
    /// (1.0 = trusted, decays per suspicion).
    pub fn weight_penalty(&self) -> f64 {
        self.weight_penalty
    }

    /// The fitted execution-time model (None until the estimator warms
    /// up — 3 completed tasks with the paper defaults).
    pub fn exec_model(&mut self) -> Option<PowerLaw> {
        self.estimator.model()
    }

    /// The latency distribution for the deadline model, per the
    /// configured kind (`None` until the estimator warms up).
    pub fn deadline_dist(&mut self, kind: crate::config::LatencyModelKind) -> Option<FittedModel> {
        use crate::config::LatencyModelKind;
        match kind {
            LatencyModelKind::PowerLaw => self.exec_model().map(FittedModel::PowerLaw),
            LatencyModelKind::Empirical => self.estimator.empirical().map(FittedModel::Empirical),
            LatencyModelKind::Auto { ks_threshold } => self.estimator.auto_model(ks_threshold),
        }
    }

    /// True once the execution-time model is usable.
    pub fn is_profiled(&self) -> bool {
        self.estimator.is_warm()
    }

    /// Mean observed execution time (None with no history).
    pub fn mean_exec_time(&self) -> Option<f64> {
        self.estimator.mean()
    }

    /// The worker's acceptable reward range, if they declared one.
    ///
    /// The paper's pricing extension (Sec. III-C, *Task Rewards*): when a
    /// task's reward falls outside this range the `(worker, task)` edge
    /// is never instantiated. `None` means the worker takes any reward.
    pub fn reward_range(&self) -> Option<(f64, f64)> {
        self.reward_range
    }

    /// True when the worker would accept a task paying `reward`.
    pub fn accepts_reward(&self, reward: f64) -> bool {
        match self.reward_range {
            None => true,
            Some((lo, hi)) => reward >= lo && reward <= hi,
        }
    }

    /// Per-category feedback tallies as `(category, finished, positive)`
    /// triples, sorted by category (for deterministic checkpoints — the
    /// `BTreeMap` already iterates in key order).
    pub fn category_stats(&self) -> Vec<(TaskCategory, u64, u64)> {
        self.by_category
            .iter()
            .map(|(c, s)| (*c, s.finished, s.positive))
            .collect()
    }

    /// The retained execution-time samples, in observation order.
    pub fn exec_samples(&self) -> &[f64] {
        self.estimator.samples()
    }
}

/// Registry of worker profiles.
#[derive(Debug, Clone)]
pub struct ProfilingComponent {
    workers: BTreeMap<WorkerId, WorkerProfile>,
    estimator_config: EstimatorConfig,
    /// Source of fresh [`WorkerProfile::epoch`] values. Strictly
    /// increasing across the component's lifetime, so a deregistered and
    /// re-registered worker can never repeat an epoch the scratch cache
    /// may still remember.
    next_epoch: u64,
}

impl Default for ProfilingComponent {
    fn default() -> Self {
        Self::new(EstimatorConfig::default())
    }
}

impl ProfilingComponent {
    /// Creates a profiler whose per-worker estimators use
    /// `estimator_config`.
    pub fn new(estimator_config: EstimatorConfig) -> Self {
        ProfilingComponent {
            workers: BTreeMap::new(),
            estimator_config,
            next_epoch: 0,
        }
    }

    /// [`Self::profile_mut`] plus an epoch bump: every scheduling-visible
    /// mutation below goes through this.
    fn touch(&mut self, id: WorkerId) -> Result<&mut WorkerProfile, CoreError> {
        self.next_epoch += 1;
        let epoch = self.next_epoch;
        let p = self
            .workers
            .get_mut(&id)
            .ok_or(CoreError::UnknownWorker(id))?;
        p.epoch = epoch;
        Ok(p)
    }

    /// Registers a new worker at `location`, initially available.
    pub fn register(&mut self, id: WorkerId, location: GeoPoint) -> Result<(), CoreError> {
        if self.workers.contains_key(&id) {
            return Err(CoreError::DuplicateWorker(id));
        }
        self.next_epoch += 1;
        let mut profile = WorkerProfile::new(id, location, self.estimator_config);
        profile.epoch = self.next_epoch;
        self.workers.insert(id, profile);
        Ok(())
    }

    /// Removes a worker entirely (left the system).
    pub fn deregister(&mut self, id: WorkerId) -> Result<WorkerProfile, CoreError> {
        self.workers.remove(&id).ok_or(CoreError::UnknownWorker(id))
    }

    /// Number of registered workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when no workers are registered.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Immutable access to a profile.
    pub fn profile(&self, id: WorkerId) -> Result<&WorkerProfile, CoreError> {
        self.workers.get(&id).ok_or(CoreError::UnknownWorker(id))
    }

    /// Mutable access to a profile (used by the scheduler for lazily
    /// fitted models).
    pub fn profile_mut(&mut self, id: WorkerId) -> Result<&mut WorkerProfile, CoreError> {
        self.workers
            .get_mut(&id)
            .ok_or(CoreError::UnknownWorker(id))
    }

    /// Sets a worker's availability.
    pub fn set_availability(
        &mut self,
        id: WorkerId,
        availability: Availability,
    ) -> Result<(), CoreError> {
        self.touch(id)?.availability = availability;
        Ok(())
    }

    /// Updates a worker's reported location.
    pub fn set_location(&mut self, id: WorkerId, location: GeoPoint) -> Result<(), CoreError> {
        self.touch(id)?.location = location;
        Ok(())
    }

    /// Declares (or clears, with `None`) a worker's acceptable reward
    /// range — the paper's pricing extension. The range can be changed
    /// at any time *"based on the user's current needs and mood"*.
    pub fn set_reward_range(
        &mut self,
        id: WorkerId,
        range: Option<(f64, f64)>,
    ) -> Result<(), CoreError> {
        let normalized = range.map(|(a, b)| if a <= b { (a, b) } else { (b, a) });
        self.touch(id)?.reward_range = normalized;
        Ok(())
    }

    /// Records that the worker received an assignment (training counter)
    /// and marks them busy.
    pub fn record_assignment(&mut self, id: WorkerId) -> Result<(), CoreError> {
        let p = self.touch(id)?;
        p.assignments_served += 1;
        p.availability = Availability::Busy;
        Ok(())
    }

    /// Records a completed task: execution time feeds the power-law
    /// estimator, the requester's feedback updates the category tally,
    /// and the worker becomes available again.
    pub fn record_completion(
        &mut self,
        id: WorkerId,
        category: TaskCategory,
        exec_time: f64,
        positive_feedback: bool,
    ) -> Result<(), CoreError> {
        let p = self.touch(id)?;
        p.estimator.observe(exec_time);
        let stats = p.by_category.entry(category).or_default();
        stats.finished += 1;
        if positive_feedback {
            stats.positive += 1;
        }
        p.availability = Availability::Available;
        Ok(())
    }

    /// Records that a task was recalled from the worker (reassignment):
    /// the worker becomes available but no completion is logged.
    pub fn record_recall(&mut self, id: WorkerId) -> Result<(), CoreError> {
        self.set_availability(id, Availability::Available)
    }

    /// Marks a worker suspect: decays its profile weight by `decay`
    /// (multiplicative, clamped to `(0, 1]`) and bumps its suspicion
    /// count. Returns the new count. The recovery layer calls this after
    /// repeated progress timeouts.
    pub fn mark_suspect(&mut self, id: WorkerId, decay: f64) -> Result<u32, CoreError> {
        let p = self.touch(id)?;
        p.suspicions += 1;
        p.weight_penalty = (p.weight_penalty * decay.clamp(f64::MIN_POSITIVE, 1.0)).max(0.0);
        Ok(p.suspicions)
    }

    /// Ids of all currently available workers, in sorted order for
    /// deterministic graph construction (the `BTreeMap` iterates in
    /// ascending id order).
    pub fn available_workers(&self) -> Vec<WorkerId> {
        self.workers
            .values()
            .filter(|p| p.availability == Availability::Available)
            .map(|p| p.id)
            .collect()
    }

    /// Ids of all online (available **or** busy) workers, sorted. This is
    /// the Traditional policy's pool: AMT-style systems have no
    /// availability signal, so busy workers receive work too.
    pub fn online_workers(&self) -> Vec<WorkerId> {
        self.workers
            .values()
            .filter(|p| p.availability != Availability::Offline)
            .map(|p| p.id)
            .collect()
    }

    /// Iterates over all profiles, in ascending worker-id order.
    pub fn iter(&self) -> impl Iterator<Item = &WorkerProfile> {
        self.workers.values()
    }

    /// Rebuilds a worker profile from checkpointed state (see
    /// [`crate::persist`]). The worker is registered as available; the
    /// execution-time samples replay through the estimator in order so
    /// window semantics are preserved.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        &mut self,
        id: WorkerId,
        location: GeoPoint,
        assignments_served: u64,
        reward_range: Option<(f64, f64)>,
        category_stats: &[(TaskCategory, u64, u64)],
        exec_samples: &[f64],
    ) -> Result<(), CoreError> {
        self.register(id, location)?;
        let profile = self.touch(id).expect("just registered");
        profile.assignments_served = assignments_served;
        profile.reward_range = reward_range.map(|(a, b)| if a <= b { (a, b) } else { (b, a) });
        for &(category, finished, positive) in category_stats {
            profile.by_category.insert(
                category,
                CategoryStats {
                    finished,
                    positive: positive.min(finished),
                },
            );
        }
        for &t in exec_samples {
            profile.estimator.observe(t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn here() -> GeoPoint {
        GeoPoint::new(37.98, 23.72)
    }

    fn profiler_with_worker() -> ProfilingComponent {
        let mut p = ProfilingComponent::default();
        p.register(WorkerId(1), here()).unwrap();
        p
    }

    #[test]
    fn register_and_duplicate() {
        let mut p = profiler_with_worker();
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert_eq!(
            p.register(WorkerId(1), here()),
            Err(CoreError::DuplicateWorker(WorkerId(1)))
        );
        assert!(p.profile(WorkerId(2)).is_err());
    }

    #[test]
    fn deregister_removes() {
        let mut p = profiler_with_worker();
        let prof = p.deregister(WorkerId(1)).unwrap();
        assert_eq!(prof.id(), WorkerId(1));
        assert!(p.is_empty());
        assert!(matches!(
            p.deregister(WorkerId(1)),
            Err(CoreError::UnknownWorker(WorkerId(1)))
        ));
    }

    #[test]
    fn availability_transitions() {
        let mut p = profiler_with_worker();
        assert_eq!(
            p.profile(WorkerId(1)).unwrap().availability(),
            Availability::Available
        );
        p.record_assignment(WorkerId(1)).unwrap();
        assert_eq!(
            p.profile(WorkerId(1)).unwrap().availability(),
            Availability::Busy
        );
        assert!(p.available_workers().is_empty());
        p.record_completion(WorkerId(1), TaskCategory(0), 5.0, true)
            .unwrap();
        assert_eq!(
            p.profile(WorkerId(1)).unwrap().availability(),
            Availability::Available
        );
        assert_eq!(p.available_workers(), vec![WorkerId(1)]);
        p.set_availability(WorkerId(1), Availability::Offline)
            .unwrap();
        assert!(p.available_workers().is_empty());
    }

    #[test]
    fn recall_frees_without_completion() {
        let mut p = profiler_with_worker();
        p.record_assignment(WorkerId(1)).unwrap();
        p.record_recall(WorkerId(1)).unwrap();
        let prof = p.profile(WorkerId(1)).unwrap();
        assert_eq!(prof.availability(), Availability::Available);
        assert_eq!(prof.total_finished(), 0);
        assert_eq!(prof.assignments_served(), 1);
    }

    #[test]
    fn eq1_accuracy_per_category() {
        let mut p = profiler_with_worker();
        let cat = TaskCategory(7);
        for positive in [true, true, false, true] {
            p.record_completion(WorkerId(1), cat, 3.0, positive)
                .unwrap();
        }
        let prof = p.profile(WorkerId(1)).unwrap();
        assert!((prof.accuracy(cat) - 0.75).abs() < 1e-12);
        assert_eq!(prof.total_finished(), 4);
        assert_eq!(prof.total_positive(), 3);
    }

    #[test]
    fn accuracy_fallback_ladder() {
        let mut p = profiler_with_worker();
        // Fresh worker: optimistic 1.0 everywhere.
        assert_eq!(
            p.profile(WorkerId(1)).unwrap().accuracy(TaskCategory(0)),
            1.0
        );
        // History only in category 0: category 1 falls back to overall.
        p.record_completion(WorkerId(1), TaskCategory(0), 2.0, false)
            .unwrap();
        p.record_completion(WorkerId(1), TaskCategory(0), 2.0, true)
            .unwrap();
        let prof = p.profile(WorkerId(1)).unwrap();
        assert!((prof.accuracy(TaskCategory(1)) - 0.5).abs() < 1e-12);
        assert!((prof.accuracy(TaskCategory(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn estimator_warms_after_three_completions() {
        let mut p = profiler_with_worker();
        for t in [4.0, 6.0] {
            p.record_completion(WorkerId(1), TaskCategory(0), t, true)
                .unwrap();
        }
        assert!(!p.profile(WorkerId(1)).unwrap().is_profiled());
        assert!(p.profile_mut(WorkerId(1)).unwrap().exec_model().is_none());
        p.record_completion(WorkerId(1), TaskCategory(0), 9.0, true)
            .unwrap();
        let prof = p.profile_mut(WorkerId(1)).unwrap();
        assert!(prof.is_profiled());
        let model = prof.exec_model().unwrap();
        assert_eq!(model.k_min(), 4.0);
        assert!((prof.mean_exec_time().unwrap() - 19.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn available_workers_sorted() {
        let mut p = ProfilingComponent::default();
        for id in [5, 1, 9, 3] {
            p.register(WorkerId(id), here()).unwrap();
        }
        assert_eq!(
            p.available_workers(),
            vec![WorkerId(1), WorkerId(3), WorkerId(5), WorkerId(9)]
        );
    }

    #[test]
    fn reward_range_declaration() {
        let mut p = profiler_with_worker();
        let prof = p.profile(WorkerId(1)).unwrap();
        assert_eq!(prof.reward_range(), None);
        assert!(prof.accepts_reward(0.0));
        p.set_reward_range(WorkerId(1), Some((0.05, 0.50))).unwrap();
        let prof = p.profile(WorkerId(1)).unwrap();
        assert!(prof.accepts_reward(0.05));
        assert!(prof.accepts_reward(0.50));
        assert!(!prof.accepts_reward(0.01));
        assert!(!prof.accepts_reward(0.51));
        // Reversed bounds are normalised.
        p.set_reward_range(WorkerId(1), Some((0.9, 0.1))).unwrap();
        assert_eq!(
            p.profile(WorkerId(1)).unwrap().reward_range(),
            Some((0.1, 0.9))
        );
        // Clearing restores accept-anything.
        p.set_reward_range(WorkerId(1), None).unwrap();
        assert!(p.profile(WorkerId(1)).unwrap().accepts_reward(1e9));
        assert!(p.set_reward_range(WorkerId(2), None).is_err());
    }

    #[test]
    fn suspicion_decays_accuracy_weight() {
        let mut p = profiler_with_worker();
        let cat = TaskCategory(0);
        for _ in 0..4 {
            p.record_completion(WorkerId(1), cat, 3.0, true).unwrap();
        }
        assert_eq!(p.profile(WorkerId(1)).unwrap().accuracy(cat), 1.0);
        assert_eq!(p.mark_suspect(WorkerId(1), 0.5).unwrap(), 1);
        assert_eq!(p.mark_suspect(WorkerId(1), 0.5).unwrap(), 2);
        let prof = p.profile(WorkerId(1)).unwrap();
        assert_eq!(prof.suspicions(), 2);
        assert!((prof.weight_penalty() - 0.25).abs() < 1e-12);
        assert!((prof.accuracy(cat) - 0.25).abs() < 1e-12);
        // The fallback ladder is penalised too.
        assert!((prof.accuracy(TaskCategory(9)) - 0.25).abs() < 1e-12);
        assert!(p.mark_suspect(WorkerId(9), 0.5).is_err());
    }

    #[test]
    fn epoch_bumps_on_every_scheduling_visible_mutation() {
        let mut p = profiler_with_worker();
        let mut last = p.profile(WorkerId(1)).unwrap().epoch();
        let mut expect_bump = |p: &ProfilingComponent, what: &str| {
            let e = p.profile(WorkerId(1)).unwrap().epoch();
            assert!(e > last, "{what} must bump the epoch");
            last = e;
        };
        p.record_assignment(WorkerId(1)).unwrap();
        expect_bump(&p, "record_assignment");
        p.record_completion(WorkerId(1), TaskCategory(0), 3.0, true)
            .unwrap();
        expect_bump(&p, "record_completion");
        p.record_recall(WorkerId(1)).unwrap();
        expect_bump(&p, "record_recall");
        p.set_availability(WorkerId(1), Availability::Offline)
            .unwrap();
        expect_bump(&p, "set_availability");
        p.set_location(WorkerId(1), GeoPoint::new(40.0, 22.0))
            .unwrap();
        expect_bump(&p, "set_location");
        p.set_reward_range(WorkerId(1), Some((0.1, 0.9))).unwrap();
        expect_bump(&p, "set_reward_range");
        p.mark_suspect(WorkerId(1), 0.5).unwrap();
        expect_bump(&p, "mark_suspect");
        // Lazy model access is output-idempotent and must NOT bump.
        let _ = p.profile_mut(WorkerId(1)).unwrap().exec_model();
        assert_eq!(p.profile(WorkerId(1)).unwrap().epoch(), last);
        // Re-registration can never reuse an epoch the cache remembers.
        p.deregister(WorkerId(1)).unwrap();
        p.register(WorkerId(1), here()).unwrap();
        assert!(p.profile(WorkerId(1)).unwrap().epoch() > last);
    }

    #[test]
    fn location_update() {
        let mut p = profiler_with_worker();
        let new_loc = GeoPoint::new(40.64, 22.94);
        p.set_location(WorkerId(1), new_loc).unwrap();
        assert_eq!(p.profile(WorkerId(1)).unwrap().location(), new_loc);
    }
}
