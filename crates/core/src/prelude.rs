//! The handful of types every REACT embedding imports.
//!
//! ```
//! use react_core::prelude::*;
//!
//! let server = ServerBuilder::new(Config::paper_defaults())
//!     .seed(1)
//!     .build()
//!     .unwrap();
//! assert!(server.tasks().unassigned().is_empty());
//! ```

pub use crate::config::{BatchTrigger, Config, LatencyModelKind, MatcherPolicy, RecoveryConfig};
pub use crate::error::{CoreError, ReactError};
pub use crate::ids::{TaskCategory, TaskId, WorkerId};
pub use crate::server::{CompletionOutcome, ReactServer, ServerBuilder, StageTimings, TickOutcome};
pub use crate::task::{Task, TaskState};

// Re-exported from the leaf crates because almost every embedding needs
// a location for its workers/tasks and a sink for its telemetry.
pub use react_geo::GeoPoint;
pub use react_obs::{null_observer, Observer, ObserverHandle};
