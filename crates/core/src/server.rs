//! The REACT region server: composition of the four components.
//!
//! One `ReactServer` owns one geographic region (point→server routing
//! across regions lives in `react-geo`). The embedding environment —
//! discrete-event simulation, threaded runtime or a real deployment —
//! drives it through three entry points:
//!
//! * [`ReactServer::submit_task`] / [`ReactServer::register_worker`] —
//!   ingestion;
//! * [`ReactServer::tick`] — the periodic control step: expire overdue
//!   queued tasks, recall doomed assignments (Eq. 2), and run a matching
//!   batch when the trigger fires, charging the calibrated scheduler
//!   latency;
//! * [`ReactServer::complete_task`] — a worker returned a result: update
//!   deadline accounting, requester feedback and the worker's profile.

use crate::config::Config;
use crate::dynamic::{DynamicAssignmentComponent, Recall};
use crate::error::CoreError;
use crate::events::{AuditLog, TaskEventKind};
use crate::ids::{TaskId, WorkerId};
use crate::profiling::{Availability, ProfilingComponent};
use crate::scheduling::{BatchResult, BatchScratch, SchedulingComponent};
use crate::task::Task;
use crate::task_mgmt::TaskManagementComponent;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use react_geo::GeoPoint;
use react_matching::{CostModel, MatcherEngine};
use react_obs::{null_observer, CounterKind, HistogramKind, ObserverHandle, SpanKind, SpanTimer};
use std::collections::BTreeMap;

/// Wall-clock seconds spent in each named stage of one tick's pipeline
/// (expire → recall → build → match → commit).
///
/// Purely observational: measured against the monotonic clock (via
/// [`react_obs::SpanTimer`]), so the values vary run to run and never
/// feed back into scheduling decisions (the *modelled* scheduler latency
/// is [`TickOutcome::matching_seconds`]). Stages that did not run this
/// tick report 0. The same durations are emitted as `tick.*` spans
/// through the server's observer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Expiry sweep over the unassigned queue.
    pub expire: f64,
    /// Eq. (2) recall check over in-flight assignments.
    pub recall: f64,
    /// Two-phase assignment-graph construction.
    pub build: f64,
    /// Matcher execution over the built graph.
    pub matching: f64,
    /// Applying the batch: task/profile bookkeeping and audit events.
    pub commit: f64,
}

impl StageTimings {
    /// Total measured pipeline time of the tick: by construction exactly
    /// the sum of the five stage fields, so it cannot drift from its
    /// parts (checked by [`StageTimings::debug_validate`] under
    /// `debug-invariants`).
    pub fn total(&self) -> f64 {
        self.expire + self.recall + self.build + self.matching + self.commit
    }

    /// Invariant check, active under the `debug-invariants` feature (and
    /// compiled away otherwise): every stage duration is finite and
    /// non-negative, and `total()` equals the sum of the parts.
    #[inline]
    pub fn debug_validate(&self) {
        #[cfg(feature = "debug-invariants")]
        {
            let parts = [
                ("expire", self.expire),
                ("recall", self.recall),
                ("build", self.build),
                ("matching", self.matching),
                ("commit", self.commit),
            ];
            for (name, v) in parts {
                assert!(
                    v.is_finite() && v >= 0.0,
                    "stage timing {name} invalid: {v}"
                );
            }
            let sum: f64 = parts.iter().map(|(_, v)| v).sum();
            assert!(
                (self.total() - sum).abs() <= f64::EPSILON * 8.0 * (1.0 + sum.abs()),
                "StageTimings::total drifted from the sum of its parts: {} vs {sum}",
                self.total()
            );
        }
    }
}

/// Everything that happened during one [`ReactServer::tick`].
#[derive(Debug, Clone, Default)]
pub struct TickOutcome {
    /// Queued tasks whose deadlines expired before assignment.
    pub expired: Vec<TaskId>,
    /// Tasks recalled from workers — by the Eq. (2) check or by the
    /// recovery timeout ladder (already moved back to the unassigned
    /// pool).
    pub recalls: Vec<Recall>,
    /// How many of [`TickOutcome::recalls`] were forced by the recovery
    /// timeout ladder rather than the Eq. (2) model.
    pub timeout_recalls: u64,
    /// Queued tasks shed this tick (graceful degradation: worker pool
    /// below `recovery.pool_floor`), lowest value first.
    pub shed: Vec<TaskId>,
    /// Fresh `(worker, task)` assignments from this tick's batch.
    pub assignments: Vec<(WorkerId, TaskId)>,
    /// When the batch's assignments take effect: `now` plus the modelled
    /// matching latency. Workers should start executing at this instant.
    pub effective_at: f64,
    /// Modelled scheduler compute time for this batch (0 when no batch
    /// ran or `charge_matching_time` is off).
    pub matching_seconds: f64,
    /// Full batch diagnostics when a batch ran.
    pub batch: Option<BatchResult>,
    /// Measured wall-clock time per pipeline stage of this tick.
    pub stage_timings: StageTimings,
}

/// Result of a completed task, for the caller's metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionOutcome {
    /// Did the result arrive before the task's deadline?
    pub met_deadline: bool,
    /// The requester feedback recorded (positive requires the deadline
    /// to have been met — the paper's Fig. 6 semantics).
    pub positive_feedback: bool,
    /// `ExecTime_ij`: seconds from (effective) assignment to completion.
    pub exec_time: f64,
}

/// Fluent constructor for [`ReactServer`], consolidating what used to be
/// the `ReactServer::new(..).with_audit().with_cost_model(..)` chain and
/// adding observer wiring.
///
/// ```
/// use react_core::prelude::*;
///
/// let server = ServerBuilder::new(Config::paper_defaults())
///     .seed(42)
///     .build()
///     .expect("paper defaults are valid");
/// assert_eq!(server.batches_run(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct ServerBuilder {
    config: Config,
    seed: u64,
    cost_model: CostModel,
    audit: Option<bool>,
    observer: ObserverHandle,
}

impl ServerBuilder {
    /// Starts a builder for `config`. Defaults: seed 0, the
    /// paper-calibrated cost model, audit as configured in
    /// `config.audit`, and the null observer.
    pub fn new(config: Config) -> Self {
        ServerBuilder {
            config,
            seed: 0,
            cost_model: CostModel::paper_calibrated(),
            audit: None,
            observer: null_observer(),
        }
    }

    /// RNG seed for the randomized matchers (equal seeds ⇒ equal runs).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the scheduler cost model (e.g. [`CostModel::free`] for
    /// quality-only experiments).
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Forces the task lifecycle audit log on or off, overriding the
    /// configuration flag.
    pub fn audit(mut self, enabled: bool) -> Self {
        self.audit = Some(enabled);
        self
    }

    /// Routes the server's telemetry — `tick`/stage spans, task and
    /// matcher counters, latency histograms — to `observer`. Observers
    /// are write-only sinks; schedules are bit-identical whatever sink
    /// is installed.
    pub fn observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }

    /// Validates the configuration and assembles the server.
    pub fn build(self) -> Result<ReactServer, CoreError> {
        self.config.validate()?;
        let audit = self.audit.unwrap_or(self.config.audit);
        Ok(ReactServer::assemble(
            self.config,
            self.seed,
            self.cost_model,
            audit,
            self.observer,
        ))
    }
}

/// A REACT region server.
#[derive(Debug, Clone)]
pub struct ReactServer {
    config: Config,
    profiling: ProfilingComponent,
    tasks: TaskManagementComponent,
    cost_model: CostModel,
    /// The matcher engine, built once from the policy and reused across
    /// batches (rebuilt only when an adaptive cycle budget moves).
    engine: MatcherEngine,
    rng: SmallRng,
    /// The scheduler is busy (matching) until this instant; new batches
    /// wait for it.
    busy_until: f64,
    last_batch_at: f64,
    total_matching_seconds: f64,
    batches_run: u64,
    audit: Option<AuditLog>,
    observer: ObserverHandle,
    /// Consecutive progress timeouts per worker since their last
    /// completion (the suspicion ladder's strike counter).
    timeout_strikes: BTreeMap<WorkerId, u32>,
    /// Incremental graph builder: persistent arenas + epoch-keyed row
    /// cache reused across batches (see [`BatchScratch`]).
    scratch: BatchScratch,
}

impl ReactServer {
    /// Starts a [`ServerBuilder`] for `config` — the supported way to
    /// construct a server.
    pub fn builder(config: Config) -> ServerBuilder {
        ServerBuilder::new(config)
    }

    /// The infallible assembly all construction paths share. Private:
    /// public construction goes through [`ServerBuilder::build`], which
    /// validates first.
    fn assemble(
        config: Config,
        seed: u64,
        cost_model: CostModel,
        audit: bool,
        observer: ObserverHandle,
    ) -> Self {
        let estimator = config.estimator;
        let audit = audit.then(AuditLog::new);
        let engine = MatcherEngine::new(config.matcher.spec()).with_observer(observer.clone());
        ReactServer {
            config,
            profiling: ProfilingComponent::new(estimator),
            tasks: TaskManagementComponent::new(),
            cost_model,
            engine,
            rng: SmallRng::seed_from_u64(seed),
            busy_until: 0.0,
            last_batch_at: 0.0,
            total_matching_seconds: 0.0,
            batches_run: 0,
            audit,
            observer,
            timeout_strikes: BTreeMap::new(),
            scratch: BatchScratch::new(),
        }
    }

    /// The audit log, when enabled.
    pub fn audit(&self) -> Option<&AuditLog> {
        self.audit.as_ref()
    }

    fn record_event(&mut self, at: f64, task: crate::ids::TaskId, kind: TaskEventKind) {
        if let Some(log) = self.audit.as_mut() {
            log.push(at, task, kind);
        }
    }

    /// Routes this server's telemetry to `observer` (also re-routes the
    /// matcher engine). Prefer [`ServerBuilder::observer`]; this exists
    /// for embeddings that construct the server before the sink.
    pub fn set_observer(&mut self, observer: ObserverHandle) {
        self.engine.set_observer(observer.clone());
        self.observer = observer;
    }

    /// The observer sink receiving this server's telemetry.
    pub fn observer(&self) -> &ObserverHandle {
        &self.observer
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Read access to worker profiles.
    pub fn profiling(&self) -> &ProfilingComponent {
        &self.profiling
    }

    /// Read access to task records.
    pub fn tasks(&self) -> &TaskManagementComponent {
        &self.tasks
    }

    /// Accumulated modelled matching time across all batches.
    pub fn total_matching_seconds(&self) -> f64 {
        self.total_matching_seconds
    }

    /// Number of batches run so far.
    pub fn batches_run(&self) -> u64 {
        self.batches_run
    }

    /// How many times the matcher engine constructed a matcher — stays
    /// at 1 across any number of batches for fixed-cycle policies;
    /// grows only when an adaptive cycle budget changes with the
    /// graph's edge count.
    pub fn matcher_rebuilds(&self) -> u64 {
        self.engine.rebuilds()
    }

    /// The instant until which the scheduler is busy matching.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }

    // ----- ingestion ------------------------------------------------

    /// Registers a worker located at `location`, initially available.
    pub fn register_worker(&mut self, id: WorkerId, location: GeoPoint) {
        // Duplicate registration is a caller bug in simulations but a
        // routine reconnect in a live system: treat as location update.
        // Only an *offline* worker flips back to available — a busy one
        // re-registering (say, a flaky connection) must stay busy, or
        // the scheduler would double-book them.
        if self.profiling.register(id, location).is_err() {
            let _ = self.profiling.set_location(id, location);
            if self
                .profiling
                .profile(id)
                .map(|p| p.availability() == Availability::Offline)
                .unwrap_or(false)
            {
                let _ = self.profiling.set_availability(id, Availability::Available);
            }
        }
    }

    /// Marks a worker as departed. Every task they were executing (or,
    /// under the Traditional policy, queueing for) returns to the
    /// unassigned pool — the Dynamic Assignment Component *"is able to
    /// deal with changes in the worker set ... by reassigning the tasks
    /// when workers abandon the system"*. Returns the recalled tasks.
    pub fn worker_offline(&mut self, id: WorkerId, now: f64) -> Vec<TaskId> {
        let held: Vec<TaskId> = self
            .tasks
            .assigned()
            .filter(|&(_, w)| w == id)
            .map(|(t, _)| t)
            .collect();
        for &task in &held {
            if self.tasks.mark_unassigned(task).is_ok() {
                self.record_event(now, task, TaskEventKind::Recalled { worker: id });
            }
        }
        let _ = self.profiling.set_availability(id, Availability::Offline);
        held
    }

    /// A previously offline worker came back. A no-op for workers that
    /// are not actually offline (a spurious reconnect while busy must
    /// not free the worker for double-booking).
    pub fn worker_online(&mut self, id: WorkerId) -> Result<(), CoreError> {
        if self.profiling.profile(id)?.availability() == Availability::Offline {
            self.profiling
                .set_availability(id, Availability::Available)?;
        }
        Ok(())
    }

    /// Accepts a task submitted at time `now`.
    pub fn submit_task(&mut self, task: Task, now: f64) {
        // Duplicate submissions are dropped (idempotent ingestion).
        let id = task.id;
        if self.tasks.submit(task, now).is_ok() {
            self.record_event(now, id, TaskEventKind::Submitted);
        }
    }

    /// Evicts up to `max` queued (unassigned) tasks, oldest first, for a
    /// cross-shard handoff and returns each task together with its
    /// original submission time. The tasks leave this server entirely
    /// (audited as [`TaskEventKind::HandedOff`]); the cluster layer
    /// re-submits them on a neighbouring shard. In-flight assignments
    /// are never evicted.
    pub fn evict_unassigned(&mut self, max: usize, now: f64) -> Vec<(Task, f64)> {
        self.tasks
            .take_unassigned(max)
            .into_iter()
            .map(|rec| {
                let id = rec.task.id;
                let submitted_at = rec.submitted_at;
                if let Some(log) = self.audit.as_mut() {
                    log.push(now, id, TaskEventKind::HandedOff);
                }
                (rec.task, submitted_at)
            })
            .collect()
    }

    // ----- the control step ------------------------------------------

    /// One control step at time `now`, as a pipeline of named stages:
    /// **expire** → **recall** → **build** → **match** → **commit**
    /// (the last three only when the scheduler is free and the batch
    /// trigger fires). Per-stage wall-clock timings are surfaced in
    /// [`TickOutcome::stage_timings`] and emitted as `tick.*` spans
    /// (plus task/batch counters) through the configured observer.
    pub fn tick(&mut self, now: f64) -> TickOutcome {
        let enabled = self.observer.enabled();
        let tick_timer = SpanTimer::start();
        let mut outcome = TickOutcome {
            effective_at: now,
            ..TickOutcome::default()
        };

        let t = SpanTimer::start();
        outcome.expired = self.stage_expire(now);
        outcome.shed = self.stage_shed(now);
        outcome.stage_timings.expire = t.finish(self.observer.as_ref(), SpanKind::StageExpire);

        let t = SpanTimer::start();
        (outcome.recalls, outcome.timeout_recalls) = self.stage_recall(now);
        outcome.stage_timings.recall = t.finish(self.observer.as_ref(), SpanKind::StageRecall);

        if self.batch_due(now) {
            // Stage 3: incremental two-phase graph construction through
            // the persistent scratch. Inlined (rather than a &mut self
            // helper) because the built graph borrows the scratch while
            // the matcher runs over the sibling fields.
            let t = SpanTimer::start();
            let built = self
                .scratch
                .build(&self.config, &mut self.profiling, &self.tasks, now);
            if enabled {
                let obs = self.observer.as_ref();
                let stats = built.stats;
                if stats.refits > 0 {
                    obs.incr(CounterKind::ProfileRefits, stats.refits as u64);
                }
                if stats.rows_reused > 0 {
                    obs.incr(CounterKind::BuildRowsReused, stats.rows_reused as u64);
                }
                if stats.cdf_memo_hits > 0 {
                    obs.incr(CounterKind::BuildCdfMemoHits, stats.cdf_memo_hits);
                }
                if stats.bytes_reused > 0 {
                    obs.incr(CounterKind::ScratchBytesReused, stats.bytes_reused as u64);
                }
            }
            outcome.stage_timings.build = t.finish(self.observer.as_ref(), SpanKind::StageBuild);

            // Stage 4: matching over the built graph through the cached
            // engine.
            let t = SpanTimer::start();
            let batch = SchedulingComponent::match_built(
                &self.config,
                &mut self.engine,
                built.graph,
                built.workers,
                built.task_ids,
                built.pruned,
                self.tasks.open_count(),
                &mut self.rng,
            );
            outcome.stage_timings.matching = t.finish(self.observer.as_ref(), SpanKind::StageMatch);

            let t = SpanTimer::start();
            self.stage_commit(now, batch, &mut outcome);
            outcome.stage_timings.commit = t.finish(self.observer.as_ref(), SpanKind::StageCommit);
        }
        outcome.stage_timings.debug_validate();
        if enabled {
            let obs = self.observer.as_ref();
            if !outcome.expired.is_empty() {
                obs.incr(CounterKind::TasksExpired, outcome.expired.len() as u64);
            }
            if !outcome.recalls.is_empty() {
                obs.incr(CounterKind::Reassignments, outcome.recalls.len() as u64);
            }
            if outcome.timeout_recalls > 0 {
                obs.incr(CounterKind::TimeoutRecalls, outcome.timeout_recalls);
            }
            if !outcome.shed.is_empty() {
                obs.incr(CounterKind::TasksShed, outcome.shed.len() as u64);
            }
            if !outcome.assignments.is_empty() {
                obs.incr(CounterKind::TasksAssigned, outcome.assignments.len() as u64);
            }
            if let Some(batch) = &outcome.batch {
                obs.incr(CounterKind::BatchesRun, 1);
                obs.observe(HistogramKind::BatchSize, batch.graph_shape.1 as f64);
                obs.observe(HistogramKind::MatchingSeconds, outcome.matching_seconds);
            }
        }
        tick_timer.finish(self.observer.as_ref(), SpanKind::Tick);
        outcome
    }

    /// Pipeline stage 1: retire queued tasks that can no longer make
    /// their deadline.
    fn stage_expire(&mut self, now: f64) -> Vec<TaskId> {
        let expired = self.tasks.expire_overdue_unassigned(now);
        for &task in &expired {
            self.record_event(now, task, TaskEventKind::Expired);
        }
        expired
    }

    /// Pipeline stage 2: recall in-flight assignments the Eq. (2) model
    /// has given up on, then apply the recovery timeout ladder to
    /// whatever is still in flight. Returns all recalls plus how many of
    /// them the ladder forced.
    fn stage_recall(&mut self, now: f64) -> (Vec<Recall>, u64) {
        let mut recalls =
            DynamicAssignmentComponent::check(&self.config, &mut self.profiling, &self.tasks, now);
        for recall in &recalls {
            if self.tasks.mark_unassigned(recall.task).is_ok() {
                let _ = self.profiling.record_recall(recall.worker);
                self.record_event(
                    now,
                    recall.task,
                    TaskEventKind::Recalled {
                        worker: recall.worker,
                    },
                );
            }
        }
        let timeout_recalls = self.stage_timeout_ladder(now, &mut recalls);
        (recalls, timeout_recalls)
    }

    /// The recovery timeout ladder: every in-flight assignment gets
    /// `min(progress_timeout · backoff^attempt, max_timeout)` seconds to
    /// show progress before it is recalled, and a worker that times out
    /// `suspect_after` times without completing anything is marked
    /// suspect (its profile weight decays). Unlike the Eq. (2) check,
    /// the ladder needs no latency model — it is the only recovery path
    /// for silently abandoned tasks and lost completion messages, and it
    /// also covers past-due assignments so they can expire instead of
    /// hanging forever on a dead worker.
    fn stage_timeout_ladder(&mut self, now: f64, recalls: &mut Vec<Recall>) -> u64 {
        let rc = self.config.recovery;
        let Some(t0) = rc.progress_timeout else {
            return 0;
        };
        let mut timeout_recalls = 0u64;
        let mut suspected = 0u64;
        // Collected up front: the loop body recalls tasks, which mutates
        // the assigned index the iterator would otherwise borrow.
        let in_flight: Vec<(TaskId, WorkerId)> = self.tasks.assigned().collect();
        for (task, worker) in in_flight {
            let Ok(rec) = self.tasks.record(task) else {
                continue; // assigned ids are always tracked
            };
            // Attempt 0 = first assignment; each retry widens the
            // allowance by the backoff factor, capped at max_timeout.
            let attempt = rec.assignment_count.saturating_sub(1).min(64);
            let allowance = (t0 * rc.backoff_factor.powi(attempt as i32)).min(rc.max_timeout);
            let Some(elapsed) = rec.elapsed_since_assignment(now) else {
                continue;
            };
            if elapsed <= allowance {
                continue;
            }
            if self.tasks.mark_unassigned(task).is_err() {
                continue;
            }
            let _ = self.profiling.record_recall(worker);
            self.record_event(now, task, TaskEventKind::Recalled { worker });
            recalls.push(Recall {
                task,
                worker,
                probability: 0.0,
            });
            timeout_recalls += 1;
            if rc.suspect_after > 0 {
                let strikes = self.timeout_strikes.entry(worker).or_insert(0);
                *strikes += 1;
                if *strikes >= rc.suspect_after {
                    *strikes = 0;
                    if self
                        .profiling
                        .mark_suspect(worker, rc.suspect_decay)
                        .is_ok()
                    {
                        suspected += 1;
                    }
                }
            }
        }
        if suspected > 0 && self.observer.enabled() {
            self.observer.incr(CounterKind::WorkersSuspected, suspected);
        }
        timeout_recalls
    }

    /// Graceful degradation: when the live worker pool has collapsed
    /// below `recovery.pool_floor`, shed queued tasks (lowest reward
    /// first) down to `recovery.shed_queue_cap` instead of letting the
    /// whole queue slide past its deadlines.
    fn stage_shed(&mut self, now: f64) -> Vec<TaskId> {
        let rc = self.config.recovery;
        if rc.pool_floor == 0 || self.profiling.online_workers().len() >= rc.pool_floor {
            return Vec::new();
        }
        let shed = self.tasks.shed_lowest_value(rc.shed_queue_cap);
        for &task in &shed {
            self.record_event(now, task, TaskEventKind::Shed);
        }
        shed
    }

    /// Whether the scheduler is free and the batch trigger fires.
    fn batch_due(&self, now: f64) -> bool {
        now >= self.busy_until
            && self
                .config
                .batch
                .should_fire(self.tasks.unassigned_count(), now - self.last_batch_at)
    }

    /// Pins the graph-build phase B to a fixed thread count
    /// (`Some(1)` = always serial, `None` = the `parallel` feature's
    /// default policy). Safe to flip at any point: the serial and
    /// parallel paths produce bit-identical graphs.
    pub fn set_build_parallelism(&mut self, threads: Option<usize>) {
        self.scratch.set_threads(threads);
    }

    /// Pipeline stage 5: apply the batch — charge the modelled matching
    /// latency, move tasks/workers to assigned, record audit events.
    fn stage_commit(&mut self, now: f64, batch: BatchResult, outcome: &mut TickOutcome) {
        let seconds = if self.config.charge_matching_time {
            self.cost_model
                .seconds_for(batch.matcher_name, batch.region_cost_units)
        } else {
            0.0
        };
        let effective_at = now + seconds;
        for &(worker, task) in &batch.assignments {
            // A batch only ever pairs ids it just read from the live
            // registries, so failures here mean the matcher fabricated
            // ids; drop the pair rather than poison the server.
            if self
                .tasks
                .mark_assigned(task, worker, effective_at)
                .is_err()
            {
                debug_assert!(false, "batch assigned untracked {task}");
                continue;
            }
            if self.profiling.record_assignment(worker).is_err() {
                debug_assert!(false, "batch assigned unregistered {worker}");
            }
            self.record_event(effective_at, task, TaskEventKind::Assigned { worker });
        }
        self.busy_until = effective_at;
        self.last_batch_at = now;
        self.total_matching_seconds += seconds;
        self.batches_run += 1;
        outcome.assignments = batch.assignments.clone();
        outcome.matching_seconds = seconds;
        outcome.effective_at = effective_at;
        outcome.batch = Some(batch);
    }

    // ----- completions ------------------------------------------------

    /// A worker returned a result at `now`. `quality_ok` is the
    /// requester's verdict on the result content (in the simulation:
    /// a coin weighted by the worker's intrinsic quality); the recorded
    /// feedback is positive only when the deadline was also met.
    pub fn complete_task(
        &mut self,
        task: TaskId,
        worker: WorkerId,
        now: f64,
        quality_ok: bool,
    ) -> Result<CompletionOutcome, CoreError> {
        let rec = self.tasks.record(task)?;
        let exec_time = rec
            .elapsed_since_assignment(now)
            .ok_or(CoreError::NotAssigned { task, worker })?;
        let category = rec.task.category;
        let met_deadline = self.tasks.complete(task, worker, now)?;
        // A delivered result absolves the worker of accumulated progress
        // strikes (the suspicion ladder counts *consecutive* timeouts).
        self.timeout_strikes.remove(&worker);
        let positive_feedback = quality_ok && met_deadline;
        self.profiling.record_completion(
            worker,
            category,
            exec_time.max(f64::MIN_POSITIVE),
            positive_feedback,
        )?;
        self.record_event(
            now,
            task,
            TaskEventKind::Completed {
                worker,
                met_deadline,
            },
        );
        if self.observer.enabled() {
            let obs = self.observer.as_ref();
            obs.incr(CounterKind::TasksCompleted, 1);
            if met_deadline {
                obs.incr(CounterKind::DeadlinesMet, 1);
            }
            if positive_feedback {
                obs.incr(CounterKind::PositiveFeedback, 1);
            }
            obs.observe(HistogramKind::ExecSeconds, exec_time);
        }
        Ok(CompletionOutcome {
            met_deadline,
            positive_feedback,
            exec_time,
        })
    }

    /// Drops retired task records older than `horizon` seconds (memory
    /// hygiene for long runs). Returns how many were pruned.
    pub fn prune_retired(&mut self, now: f64, horizon: f64) -> usize {
        self.tasks.prune_retired(now, horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BatchTrigger, MatcherPolicy};
    use crate::ids::TaskCategory;
    use react_matching::CostModel;

    fn here() -> GeoPoint {
        GeoPoint::new(37.98, 23.72)
    }

    fn task(id: u64, deadline: f64) -> Task {
        Task::new(TaskId(id), here(), deadline, 0.05, TaskCategory(0), "t")
    }

    /// A server that batches on every waiting task and charges no
    /// matching time — convenient for step-by-step tests.
    fn eager_server() -> ReactServer {
        let mut config = Config::paper_defaults();
        config.batch = BatchTrigger {
            min_unassigned: 1,
            period: None,
        };
        ReactServer::builder(config)
            .seed(7)
            .cost_model(CostModel::free())
            .build()
            .unwrap()
    }

    #[test]
    fn assigns_submitted_task_to_registered_worker() {
        let mut s = eager_server();
        s.register_worker(WorkerId(1), here());
        s.submit_task(task(1, 60.0), 0.0);
        let out = s.tick(0.0);
        assert_eq!(out.assignments, vec![(WorkerId(1), TaskId(1))]);
        assert_eq!(out.effective_at, 0.0);
        assert_eq!(out.matching_seconds, 0.0);
        assert!(out.expired.is_empty());
        assert_eq!(s.batches_run(), 1);
        // Worker is now busy; a second task waits.
        s.submit_task(task(2, 60.0), 1.0);
        let out = s.tick(1.0);
        assert!(out.assignments.is_empty());
    }

    #[test]
    fn batch_trigger_threshold_respected() {
        let mut config = Config::paper_defaults(); // min_unassigned = 10
        config.charge_matching_time = false;
        let mut s = ReactServer::builder(config).seed(1).build().unwrap();
        for w in 0..20 {
            s.register_worker(WorkerId(w), here());
        }
        for t in 0..9 {
            s.submit_task(task(t, 60.0), 0.0);
        }
        assert!(s.tick(0.0).assignments.is_empty(), "9 < 10: no batch");
        s.submit_task(task(9, 60.0), 0.0);
        let out = s.tick(0.0);
        assert_eq!(out.assignments.len(), 10);
    }

    #[test]
    fn charged_matching_time_delays_effect_and_blocks_scheduler() {
        let mut config = Config::paper_defaults();
        config.batch = BatchTrigger {
            min_unassigned: 1,
            period: None,
        };
        let mut s = ReactServer::builder(config).seed(1).build().unwrap();
        for w in 0..5 {
            s.register_worker(WorkerId(w), here());
        }
        s.submit_task(task(1, 600.0), 0.0);
        let out = s.tick(0.0);
        assert_eq!(out.assignments.len(), 1);
        assert!(out.matching_seconds > 0.0, "paper cost model charges time");
        assert_eq!(out.effective_at, out.matching_seconds);
        assert_eq!(s.busy_until(), out.effective_at);
        // While busy, no further batch runs.
        s.submit_task(task(2, 600.0), 0.0);
        let mid = s.tick(out.effective_at / 2.0);
        assert!(mid.assignments.is_empty());
        // After the busy window the queued task is served.
        let later = s.tick(out.effective_at);
        assert_eq!(later.assignments.len(), 1);
        assert!(s.total_matching_seconds() > 0.0);
    }

    #[test]
    fn completion_updates_profile_and_feedback() {
        let mut s = eager_server();
        s.register_worker(WorkerId(1), here());
        s.submit_task(task(1, 60.0), 0.0);
        s.tick(0.0);
        let out = s.complete_task(TaskId(1), WorkerId(1), 5.0, true).unwrap();
        assert!(out.met_deadline);
        assert!(out.positive_feedback);
        assert_eq!(out.exec_time, 5.0);
        let profile = s.profiling().profile(WorkerId(1)).unwrap();
        assert_eq!(profile.total_finished(), 1);
        assert_eq!(profile.total_positive(), 1);
        assert_eq!(profile.availability(), Availability::Available);
    }

    #[test]
    fn late_completion_never_earns_positive_feedback() {
        let mut s = eager_server();
        s.register_worker(WorkerId(1), here());
        s.submit_task(task(1, 10.0), 0.0);
        s.tick(0.0);
        let out = s.complete_task(TaskId(1), WorkerId(1), 99.0, true).unwrap();
        assert!(!out.met_deadline);
        assert!(!out.positive_feedback, "positive requires met deadline");
    }

    #[test]
    fn unassigned_tasks_expire() {
        let mut s = eager_server();
        s.submit_task(task(1, 10.0), 0.0);
        // No workers: the task sits unassigned past its deadline.
        let out = s.tick(11.0);
        assert_eq!(out.expired, vec![TaskId(1)]);
    }

    #[test]
    fn stalled_worker_triggers_recall_and_reassignment() {
        let mut s = eager_server();
        s.register_worker(WorkerId(1), here());
        // Build a fast profile for worker 1 (3 tasks, 1–2 s each).
        for t in 0..3 {
            s.submit_task(task(100 + t, 60.0), 0.0);
            s.tick(0.0);
            s.complete_task(TaskId(100 + t), WorkerId(1), 0.0 + 1.5, true)
                .unwrap();
        }
        // Caveat: completions above all at time 1.5; now assign a fresh
        // task and let the worker stall.
        s.submit_task(task(200, 60.0), 10.0);
        let out = s.tick(10.0);
        assert_eq!(out.assignments.len(), 1);
        // At t=50 the worker has stalled for 40 s on a ≤2 s profile.
        s.register_worker(WorkerId(2), here()); // a rescuer appears
        let out = s.tick(50.0);
        assert_eq!(out.recalls.len(), 1);
        assert_eq!(out.recalls[0].task, TaskId(200));
        assert_eq!(out.recalls[0].worker, WorkerId(1));
        // The same tick's batch hands the task to the fresh worker.
        assert_eq!(out.assignments, vec![(WorkerId(2), TaskId(200))]);
    }

    #[test]
    fn traditional_server_never_recalls() {
        let mut config = Config::with_matcher(MatcherPolicy::Traditional);
        config.batch = BatchTrigger {
            min_unassigned: 1,
            period: None,
        };
        config.charge_matching_time = false;
        let mut s = ReactServer::builder(config).seed(3).build().unwrap();
        s.register_worker(WorkerId(1), here());
        for t in 0..3 {
            s.submit_task(task(100 + t, 60.0), 0.0);
            s.tick(0.0);
            s.complete_task(TaskId(100 + t), WorkerId(1), 1.0, true)
                .unwrap();
        }
        s.submit_task(task(200, 60.0), 10.0);
        s.tick(10.0);
        let out = s.tick(55.0);
        assert!(out.recalls.is_empty());
    }

    #[test]
    fn timeout_ladder_recalls_silent_workers_and_suspects_them() {
        use crate::config::RecoveryConfig;
        let mut config = Config::paper_defaults();
        config.batch = BatchTrigger {
            min_unassigned: 1,
            period: None,
        };
        config.recovery = RecoveryConfig::aggressive(10.0);
        config.recovery.suspect_after = 2;
        config.recovery.suspect_decay = 0.5;
        let mut s = ReactServer::builder(config)
            .seed(7)
            .cost_model(CostModel::free())
            .audit(true)
            .build()
            .unwrap();
        s.register_worker(WorkerId(1), here());
        s.submit_task(task(1, 600.0), 0.0);
        assert_eq!(s.tick(0.0).assignments.len(), 1);
        // Inside the 10 s allowance: nothing happens.
        let out = s.tick(5.0);
        assert!(out.recalls.is_empty() && out.timeout_recalls == 0);
        // Past it: the ladder recalls, and the lone worker is re-picked.
        let out = s.tick(11.0);
        assert_eq!(out.timeout_recalls, 1);
        assert_eq!(out.recalls.len(), 1);
        assert_eq!(out.recalls[0].task, TaskId(1));
        assert_eq!(out.assignments, vec![(WorkerId(1), TaskId(1))]);
        // Attempt 1 gets a backed-off 20 s allowance.
        let out = s.tick(25.0);
        assert!(out.recalls.is_empty(), "within the widened allowance");
        let out = s.tick(35.0);
        assert_eq!(out.timeout_recalls, 1, "second strike past 11+20");
        // Two strikes ⇒ suspect, weight decayed.
        let prof = s.profiling().profile(WorkerId(1)).unwrap();
        assert_eq!(prof.suspicions(), 1);
        assert!((prof.weight_penalty() - 0.5).abs() < 1e-12);
        crate::verify_lifecycles(s.audit().unwrap());
        // A completion clears the strike counter.
        s.complete_task(TaskId(1), WorkerId(1), 36.0, true).unwrap();
        assert!(s.timeout_strikes.is_empty());
    }

    #[test]
    fn ladder_disabled_by_default_leaves_stalled_workers_alone() {
        let mut s = eager_server();
        s.register_worker(WorkerId(1), here());
        s.submit_task(task(1, 600.0), 0.0);
        s.tick(0.0);
        // No profile (cold worker) and no ladder: nothing recalls even
        // after a long stall.
        let out = s.tick(500.0);
        assert!(out.recalls.is_empty());
        assert_eq!(out.timeout_recalls, 0);
    }

    #[test]
    fn pool_collapse_sheds_lowest_value_tasks() {
        use crate::config::RecoveryConfig;
        let mut config = Config::paper_defaults();
        config.recovery = RecoveryConfig {
            pool_floor: 1,
            shed_queue_cap: 1,
            ..RecoveryConfig::disabled()
        };
        let mut s = ReactServer::builder(config)
            .seed(7)
            .audit(true)
            .build()
            .unwrap();
        let submit = |s: &mut ReactServer, id: u64, reward: f64| {
            s.submit_task(
                Task::new(TaskId(id), here(), 600.0, reward, TaskCategory(0), "t"),
                0.0,
            );
        };
        // No workers online: pool (0) is below the floor (1).
        submit(&mut s, 1, 0.09);
        submit(&mut s, 2, 0.01);
        submit(&mut s, 3, 0.05);
        let out = s.tick(1.0);
        assert_eq!(out.shed, vec![TaskId(2), TaskId(3)], "cheapest shed first");
        assert_eq!(s.tasks().unassigned(), &[TaskId(1)]);
        crate::verify_lifecycles(s.audit().unwrap());
        // With a worker online the pool is at the floor: no shedding.
        s.register_worker(WorkerId(1), here());
        submit(&mut s, 4, 0.01);
        assert!(s.tick(2.0).shed.is_empty());
    }

    #[test]
    fn worker_offline_recalls_their_task() {
        let mut s = eager_server();
        s.register_worker(WorkerId(1), here());
        s.submit_task(task(1, 60.0), 0.0);
        s.tick(0.0);
        let recalled = s.worker_offline(WorkerId(1), 0.5);
        assert_eq!(recalled, vec![TaskId(1)]);
        assert_eq!(s.tasks().unassigned(), &[TaskId(1)]);
        // Coming back online makes them assignable again.
        s.worker_online(WorkerId(1)).unwrap();
        let out = s.tick(1.0);
        assert_eq!(out.assignments, vec![(WorkerId(1), TaskId(1))]);
    }

    #[test]
    fn duplicate_registration_is_location_update() {
        let mut s = eager_server();
        s.register_worker(WorkerId(1), here());
        let elsewhere = GeoPoint::new(40.64, 22.94);
        s.register_worker(WorkerId(1), elsewhere);
        assert_eq!(
            s.profiling().profile(WorkerId(1)).unwrap().location(),
            elsewhere
        );
    }

    #[test]
    fn completion_of_unassigned_task_fails() {
        let mut s = eager_server();
        s.register_worker(WorkerId(1), here());
        s.submit_task(task(1, 60.0), 0.0);
        // Not yet ticked: task unassigned.
        assert!(s.complete_task(TaskId(1), WorkerId(1), 5.0, true).is_err());
        assert!(s.complete_task(TaskId(9), WorkerId(1), 5.0, true).is_err());
    }

    #[test]
    fn matcher_is_cached_across_batches() {
        let mut s = eager_server();
        for w in 0..3 {
            s.register_worker(WorkerId(w), here());
        }
        for t in 0..3u64 {
            s.submit_task(task(t, 600.0), t as f64);
            s.tick(t as f64);
        }
        assert!(s.batches_run() >= 2);
        assert_eq!(s.matcher_rebuilds(), 1, "fixed cycles ⇒ built once");
    }

    #[test]
    fn adaptive_matcher_rebuilds_track_edge_count_changes() {
        let mut config = Config::paper_defaults();
        config.matcher = MatcherPolicy::ReactAdaptive { kappa: 1.0 };
        config.batch = BatchTrigger {
            min_unassigned: 1,
            period: None,
        };
        let mut s = ReactServer::builder(config)
            .seed(5)
            .cost_model(CostModel::free())
            .build()
            .unwrap();
        for w in 0..4 {
            s.register_worker(WorkerId(w), here());
        }
        // First batch: 4 workers × 2 tasks; second: fewer free workers,
        // different edge count → adaptive budget moves, engine rebuilds.
        s.submit_task(task(1, 600.0), 0.0);
        s.submit_task(task(2, 600.0), 0.0);
        s.tick(0.0);
        let after_first = s.matcher_rebuilds();
        assert_eq!(after_first, 1);
        s.submit_task(task(3, 600.0), 1.0);
        s.tick(1.0);
        assert!(s.batches_run() == 2);
        assert!(s.matcher_rebuilds() >= after_first);
    }

    #[test]
    fn tick_reports_stage_timings() {
        let mut s = eager_server();
        s.register_worker(WorkerId(1), here());
        s.submit_task(task(1, 60.0), 0.0);
        let out = s.tick(0.0);
        assert_eq!(out.assignments.len(), 1, "batch ran");
        let t = out.stage_timings;
        for (name, v) in [
            ("expire", t.expire),
            ("recall", t.recall),
            ("build", t.build),
            ("matching", t.matching),
            ("commit", t.commit),
        ] {
            assert!(v >= 0.0 && v.is_finite(), "{name} timing invalid: {v}");
        }
        assert!(t.total() >= t.matching);
        // A tick with no batch leaves the batch stages at zero.
        let idle = s.tick(0.5);
        assert!(idle.assignments.is_empty());
        assert_eq!(idle.stage_timings.build, 0.0);
        assert_eq!(idle.stage_timings.matching, 0.0);
        assert_eq!(idle.stage_timings.commit, 0.0);
    }

    #[test]
    fn builder_validates_config() {
        let mut config = Config::paper_defaults();
        config.matcher = MatcherPolicy::React { cycles: 0 };
        let err = ReactServer::builder(config).build().unwrap_err();
        assert!(matches!(err, crate::CoreError::InvalidConfig { .. }));
    }

    #[test]
    fn builder_audit_overrides_config_flag() {
        let mut config = Config::paper_defaults();
        config.audit = true;
        let s = ReactServer::builder(config.clone()).build().unwrap();
        assert!(s.audit().is_some(), "config flag honoured by default");
        let s = ReactServer::builder(config).audit(false).build().unwrap();
        assert!(s.audit().is_none(), "builder override wins");
        let s = ReactServer::builder(Config::paper_defaults())
            .audit(true)
            .build()
            .unwrap();
        assert!(s.audit().is_some());
    }

    #[test]
    fn evict_unassigned_transfers_queue_with_audit() {
        let mut config = Config::paper_defaults();
        config.batch = BatchTrigger {
            min_unassigned: 100, // never batch — keep the queue intact
            period: None,
        };
        let mut s = ReactServer::builder(config).audit(true).build().unwrap();
        s.register_worker(WorkerId(1), here());
        s.submit_task(task(1, 60.0), 0.0);
        s.submit_task(task(2, 60.0), 1.0);
        s.submit_task(task(3, 60.0), 2.0);
        let evicted = s.evict_unassigned(2, 3.0);
        assert_eq!(evicted.len(), 2, "eviction respects the cap");
        assert_eq!(evicted[0].0.id, crate::ids::TaskId(1));
        assert_eq!(evicted[0].1, 0.0, "original submission time preserved");
        assert_eq!(evicted[1].0.id, crate::ids::TaskId(2));
        assert_eq!(s.tasks().unassigned_count(), 1);
        // Handed-off tasks close their lifecycle on this server's log.
        let log = s.audit().unwrap();
        crate::events::verify_lifecycles(log);
        let history = log.task_history(crate::ids::TaskId(1));
        assert_eq!(history.last().unwrap().kind, TaskEventKind::HandedOff);
    }

    #[test]
    fn observer_receives_stage_spans_and_counters() {
        use react_obs::RecordingObserver;
        use std::sync::Arc;

        let rec = RecordingObserver::new();
        let mut config = Config::paper_defaults();
        config.batch = BatchTrigger {
            min_unassigned: 1,
            period: None,
        };
        let mut s = ReactServer::builder(config)
            .seed(7)
            .cost_model(CostModel::free())
            .observer(Arc::new(rec.clone()))
            .build()
            .unwrap();
        s.register_worker(WorkerId(1), here());
        s.submit_task(task(1, 60.0), 0.0);
        let out = s.tick(0.0);
        assert_eq!(out.assignments.len(), 1);
        s.complete_task(TaskId(1), WorkerId(1), 5.0, true).unwrap();

        for kind in [
            SpanKind::Tick,
            SpanKind::StageExpire,
            SpanKind::StageRecall,
            SpanKind::StageBuild,
            SpanKind::StageMatch,
            SpanKind::StageCommit,
            SpanKind::MatcherAssign,
        ] {
            let stats = rec
                .span_stats(kind)
                .unwrap_or_else(|| panic!("missing span {}", kind.name()));
            assert!(stats.count >= 1, "{}", kind.name());
            assert!(stats.total_seconds >= 0.0);
        }
        assert_eq!(rec.counter(CounterKind::TasksAssigned), 1);
        assert_eq!(rec.counter(CounterKind::BatchesRun), 1);
        assert_eq!(rec.counter(CounterKind::TasksCompleted), 1);
        assert_eq!(rec.counter(CounterKind::DeadlinesMet), 1);
        assert_eq!(rec.counter(CounterKind::PositiveFeedback), 1);
        assert!(rec.counter(CounterKind::MatcherCycles) > 0);
        assert!(rec.histogram(HistogramKind::ExecSeconds).is_some());
        assert!(rec.histogram(HistogramKind::MatchingSeconds).is_some());
    }

    #[test]
    fn null_and_recording_observers_yield_identical_schedules() {
        use react_obs::RecordingObserver;
        use std::sync::Arc;

        let mut config = Config::paper_defaults();
        config.batch = BatchTrigger {
            min_unassigned: 1,
            period: None,
        };
        let build = |observed: bool| {
            let b = ReactServer::builder(config.clone()).seed(99);
            let b = if observed {
                b.observer(Arc::new(RecordingObserver::new()))
            } else {
                b
            };
            b.build().unwrap()
        };
        let mut plain = build(false);
        let mut observed = build(true);
        for s in [&mut plain, &mut observed] {
            for w in 0..4 {
                s.register_worker(WorkerId(w), here());
            }
            for t in 0..12u64 {
                s.submit_task(task(t, 600.0), 0.0);
            }
        }
        for step in 0..20 {
            let now = step as f64;
            let a = plain.tick(now);
            let b = observed.tick(now);
            assert_eq!(a.assignments, b.assignments);
            assert_eq!(a.effective_at.to_bits(), b.effective_at.to_bits());
            assert_eq!(a.matching_seconds.to_bits(), b.matching_seconds.to_bits());
        }
    }

    #[test]
    fn prune_retired_delegates() {
        let mut s = eager_server();
        s.register_worker(WorkerId(1), here());
        s.submit_task(task(1, 10.0), 0.0);
        s.tick(0.0);
        s.complete_task(TaskId(1), WorkerId(1), 1.0, true).unwrap();
        assert_eq!(s.prune_retired(1_000.0, 10.0), 1);
    }
}
