//! Edge weight functions `F(worker_i, task_j)`.
//!
//! The paper evaluates with the **accuracy** weight (Eq. 1) — the
//! worker's positive-feedback ratio in the task's category — and
//! discusses a **distance** variant for location-based applications
//! (*"we could use their geographical distance on the weight in order to
//! get the nearest worker for the specific task"*). Both are provided,
//! plus a convex blend, all normalised into `[0, 1]` so they are
//! interchangeable in the matching graph.

use crate::ids::TaskCategory;
use crate::profiling::WorkerProfile;
use crate::task::Task;

/// Which weight function the Scheduling Component uses.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WeightFunction {
    /// Eq. (1): worker accuracy in the task's category,
    /// `Σ positive / Σ finished ∈ [0, 1]`.
    #[default]
    Accuracy,
    /// Proximity: `1 / (1 + distance_km / scale_km)` — 1 at the task
    /// location, decaying with great-circle distance.
    Distance {
        /// The distance (km) at which the weight halves.
        scale_km: f64,
    },
    /// Convex combination `λ·accuracy + (1−λ)·proximity`.
    Blend {
        /// Weight of the accuracy term, `λ ∈ [0, 1]`.
        lambda: f64,
        /// Proximity half-weight distance (km).
        scale_km: f64,
    },
}

impl WeightFunction {
    /// Evaluates `F(worker, task) ∈ [0, 1]`.
    pub fn evaluate(&self, worker: &WorkerProfile, task: &Task) -> f64 {
        match *self {
            WeightFunction::Accuracy => accuracy_weight(worker, task.category),
            WeightFunction::Distance { scale_km } => distance_weight(worker, task, scale_km),
            WeightFunction::Blend { lambda, scale_km } => {
                let l = lambda.clamp(0.0, 1.0);
                l * accuracy_weight(worker, task.category)
                    + (1.0 - l) * distance_weight(worker, task, scale_km)
            }
        }
    }
}

fn accuracy_weight(worker: &WorkerProfile, category: TaskCategory) -> f64 {
    worker.accuracy(category).clamp(0.0, 1.0)
}

fn distance_weight(worker: &WorkerProfile, task: &Task, scale_km: f64) -> f64 {
    let d = worker.location().distance_km(&task.location);
    let scale = scale_km.max(f64::MIN_POSITIVE);
    1.0 / (1.0 + d / scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{TaskId, WorkerId};
    use crate::profiling::ProfilingComponent;
    use react_geo::GeoPoint;

    fn setup() -> (ProfilingComponent, Task) {
        let mut p = ProfilingComponent::default();
        p.register(WorkerId(1), GeoPoint::new(37.98, 23.72))
            .unwrap();
        let task = Task::new(
            TaskId(1),
            GeoPoint::new(38.08, 23.72), // ≈ 11 km north
            60.0,
            0.05,
            TaskCategory(0),
            "t",
        );
        (p, task)
    }

    #[test]
    fn accuracy_weight_tracks_feedback() {
        let (mut p, task) = setup();
        let wf = WeightFunction::Accuracy;
        // Fresh worker: optimistic 1.0.
        assert_eq!(wf.evaluate(p.profile(WorkerId(1)).unwrap(), &task), 1.0);
        p.record_completion(WorkerId(1), TaskCategory(0), 5.0, true)
            .unwrap();
        p.record_completion(WorkerId(1), TaskCategory(0), 5.0, false)
            .unwrap();
        assert!((wf.evaluate(p.profile(WorkerId(1)).unwrap(), &task) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distance_weight_decays() {
        let (p, task) = setup();
        let near = WeightFunction::Distance { scale_km: 100.0 };
        let far = WeightFunction::Distance { scale_km: 1.0 };
        let profile = p.profile(WorkerId(1)).unwrap();
        let w_near = near.evaluate(profile, &task);
        let w_far = far.evaluate(profile, &task);
        assert!(w_near > w_far, "larger scale should tolerate distance");
        assert!((0.0..=1.0).contains(&w_near));
        assert!((0.0..=1.0).contains(&w_far));
        // Worker exactly at the task location scores 1.0.
        let colocated = Task::new(
            TaskId(2),
            profile.location(),
            60.0,
            0.0,
            TaskCategory(0),
            "t",
        );
        assert_eq!(near.evaluate(profile, &colocated), 1.0);
    }

    #[test]
    fn blend_interpolates() {
        let (mut p, task) = setup();
        // Force accuracy to 0 so the blend isolates the proximity term.
        p.record_completion(WorkerId(1), TaskCategory(0), 5.0, false)
            .unwrap();
        let profile = p.profile(WorkerId(1)).unwrap();
        let acc_only = WeightFunction::Blend {
            lambda: 1.0,
            scale_km: 10.0,
        };
        let dist_only = WeightFunction::Blend {
            lambda: 0.0,
            scale_km: 10.0,
        };
        let half = WeightFunction::Blend {
            lambda: 0.5,
            scale_km: 10.0,
        };
        let a = acc_only.evaluate(profile, &task);
        let d = dist_only.evaluate(profile, &task);
        let h = half.evaluate(profile, &task);
        assert_eq!(a, 0.0);
        assert!((h - 0.5 * (a + d)).abs() < 1e-12);
        // Out-of-range lambda clamps.
        let clamped = WeightFunction::Blend {
            lambda: 7.0,
            scale_km: 10.0,
        };
        assert_eq!(clamped.evaluate(profile, &task), a);
    }

    #[test]
    fn default_is_accuracy() {
        assert_eq!(WeightFunction::default(), WeightFunction::Accuracy);
    }
}
