//! Parallel-execution helpers shared by the workspace.
//!
//! The parallel code paths (phase-B graph instantiation here, region
//! fan-out in `react-crowd`) use plain `std::thread::scope` workers and
//! are always compiled; the `parallel` cargo feature only flips the
//! *default* dispatch of the combined entry points. Thread count is
//! resolved once per call site through [`parallelism`], which honours
//! the `REACT_PARALLEL_THREADS` environment variable so CI can force a
//! single-threaded run of the very same code paths.

/// Environment variable overriding the worker-thread count (the
/// `RAYON_NUM_THREADS` analogue; `1` forces the serial path).
pub const THREADS_ENV: &str = "REACT_PARALLEL_THREADS";

/// The effective worker-thread count for parallel stages: the
/// [`THREADS_ENV`] variable when set to a positive integer, otherwise
/// the hardware parallelism reported by the OS.
pub fn parallelism() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Splits `n` items over at most `threads` workers; returns the chunk
/// length (≥ 1) so `chunks(len)` yields one contiguous slice per worker.
pub fn chunk_len(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_is_positive() {
        assert!(parallelism() >= 1);
    }

    #[test]
    fn chunk_len_covers_all_items() {
        for n in 0..40usize {
            for threads in 1..8usize {
                let len = chunk_len(n, threads);
                assert!(len >= 1);
                // `chunks(len)` yields ceil(n/len) slices ≤ threads for n > 0.
                if n > 0 {
                    assert!(n.div_ceil(len) <= threads.max(1));
                }
            }
        }
    }
}
