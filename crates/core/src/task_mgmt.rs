//! The Task Management Component.
//!
//! Tracks every task in the platform: its immutable description, its
//! lifecycle state, the remaining time to its deadline and — when
//! assigned — which worker holds it and for how long. Provides the
//! scheduler's view of the unassigned pool and retires tasks whose
//! deadlines expired while waiting.

use crate::error::CoreError;
use crate::ids::{TaskId, WorkerId};
use crate::task::{Task, TaskState};
use std::collections::BTreeMap;

/// A tracked task: description + dynamic state.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// The submitted task.
    pub task: Task,
    /// Submission timestamp (seconds).
    pub submitted_at: f64,
    /// Current lifecycle state.
    pub state: TaskState,
    /// How many times the task has been assigned (1 + reassignments).
    pub assignment_count: u32,
}

impl TaskRecord {
    /// Absolute deadline instant: `submitted_at + deadline`.
    pub fn deadline_at(&self) -> f64 {
        self.submitted_at + self.task.deadline
    }

    /// `remaining_time` until expiry at `now` (negative once past due).
    pub fn remaining_time(&self, now: f64) -> f64 {
        self.deadline_at() - now
    }

    /// `TimeToDeadline_ij` — the window from the current assignment's
    /// start to the deadline. `None` when unassigned.
    pub fn time_to_deadline(&self) -> Option<f64> {
        match self.state {
            TaskState::Assigned { assigned_at, .. } => Some(self.deadline_at() - assigned_at),
            _ => None,
        }
    }

    /// `t_ij` — seconds since the current assignment started. `None`
    /// when unassigned.
    pub fn elapsed_since_assignment(&self, now: f64) -> Option<f64> {
        match self.state {
            TaskState::Assigned { assigned_at, .. } => Some((now - assigned_at).max(0.0)),
            _ => None,
        }
    }
}

/// Registry and lifecycle manager for tasks.
#[derive(Debug, Clone, Default)]
pub struct TaskManagementComponent {
    tasks: BTreeMap<TaskId, TaskRecord>,
    /// Unassigned tasks in submission/recall order (deterministic
    /// scheduling input).
    unassigned: Vec<TaskId>,
    /// In-flight tasks, maintained incrementally alongside `tasks` so
    /// the per-tick recall scan iterates a sorted index instead of
    /// filtering and sorting the whole registry into a fresh `Vec`.
    assigned_index: BTreeMap<TaskId, WorkerId>,
}

impl TaskManagementComponent {
    /// Creates an empty component.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts a new task at time `now`.
    pub fn submit(&mut self, task: Task, now: f64) -> Result<(), CoreError> {
        if self.tasks.contains_key(&task.id) {
            return Err(CoreError::DuplicateTask(task.id));
        }
        let id = task.id;
        self.tasks.insert(
            id,
            TaskRecord {
                task,
                submitted_at: now,
                state: TaskState::Unassigned,
                assignment_count: 0,
            },
        );
        self.unassigned.push(id);
        Ok(())
    }

    /// The record for `id`.
    pub fn record(&self, id: TaskId) -> Result<&TaskRecord, CoreError> {
        self.tasks.get(&id).ok_or(CoreError::UnknownTask(id))
    }

    /// Number of tracked tasks (all states).
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The unassigned pool, oldest first.
    pub fn unassigned(&self) -> &[TaskId] {
        &self.unassigned
    }

    /// Number of unassigned tasks (the scheduler's batch trigger input).
    pub fn unassigned_count(&self) -> usize {
        self.unassigned.len()
    }

    /// Number of *open* tasks — unassigned plus in-flight. Sec. III-C
    /// maintains the region graph over this whole set (*"the task set
    /// changes only when new tasks arrive or executing tasks finish"*),
    /// which is what the scheduler's compute cost scales with.
    pub fn open_count(&self) -> usize {
        self.debug_validate_assigned_index();
        self.unassigned.len() + self.assigned_index.len()
    }

    /// All currently assigned task ids with their workers, in ascending
    /// task-id order (the order the old `Vec`-returning variant sorted
    /// into). Iterates the maintained index — no allocation.
    pub fn assigned(&self) -> impl Iterator<Item = (TaskId, WorkerId)> + '_ {
        self.debug_validate_assigned_index();
        self.assigned_index.iter().map(|(&t, &w)| (t, w))
    }

    /// Number of in-flight (assigned) tasks.
    pub fn assigned_count(&self) -> usize {
        self.assigned_index.len()
    }

    /// Under `debug-invariants`, re-derives the assigned index from the
    /// task registry and asserts the incremental bookkeeping matches.
    #[inline]
    fn debug_validate_assigned_index(&self) {
        #[cfg(feature = "debug-invariants")]
        {
            let derived: BTreeMap<TaskId, WorkerId> = self
                .tasks
                .values()
                .filter_map(|r| r.state.assigned_worker().map(|w| (r.task.id, w)))
                .collect();
            assert_eq!(
                derived, self.assigned_index,
                "assigned index diverged from task states"
            );
            let open = self.tasks.values().filter(|r| r.state.is_open()).count();
            assert_eq!(
                open,
                self.unassigned.len() + self.assigned_index.len(),
                "open tasks must be exactly unassigned + assigned"
            );
        }
    }

    /// Marks `id` assigned to `worker` at `now`.
    pub fn mark_assigned(
        &mut self,
        id: TaskId,
        worker: WorkerId,
        now: f64,
    ) -> Result<(), CoreError> {
        let rec = self.tasks.get_mut(&id).ok_or(CoreError::UnknownTask(id))?;
        rec.state = TaskState::Assigned {
            worker,
            assigned_at: now,
        };
        rec.assignment_count += 1;
        self.unassigned.retain(|&t| t != id);
        self.assigned_index.insert(id, worker);
        Ok(())
    }

    /// Recalls an assigned task back into the unassigned pool (dynamic
    /// reassignment). Returns the worker it was recalled from.
    pub fn mark_unassigned(&mut self, id: TaskId) -> Result<WorkerId, CoreError> {
        let rec = self.tasks.get_mut(&id).ok_or(CoreError::UnknownTask(id))?;
        match rec.state {
            TaskState::Assigned { worker, .. } => {
                rec.state = TaskState::Unassigned;
                self.unassigned.push(id);
                self.assigned_index.remove(&id);
                Ok(worker)
            }
            _ => Err(CoreError::NotAssigned {
                task: id,
                worker: WorkerId(u64::MAX),
            }),
        }
    }

    /// Completes `id` at `now` by `worker`. Returns whether the deadline
    /// was met.
    pub fn complete(&mut self, id: TaskId, worker: WorkerId, now: f64) -> Result<bool, CoreError> {
        let rec = self.tasks.get_mut(&id).ok_or(CoreError::UnknownTask(id))?;
        match rec.state {
            TaskState::Assigned { worker: w, .. } if w == worker => {
                let met_deadline = now <= rec.deadline_at();
                rec.state = TaskState::Completed {
                    worker,
                    completed_at: now,
                    met_deadline,
                };
                self.assigned_index.remove(&id);
                Ok(met_deadline)
            }
            _ => Err(CoreError::NotAssigned { task: id, worker }),
        }
    }

    /// Expires every *unassigned* task whose deadline has passed at
    /// `now` and returns their ids. (The paper's model: an expired task
    /// leaves the repository; a task already executing may still finish
    /// late — the soft-deadline semantics.)
    pub fn expire_overdue_unassigned(&mut self, now: f64) -> Vec<TaskId> {
        let mut expired = Vec::new();
        self.unassigned.retain(|&id| {
            let Some(rec) = self.tasks.get_mut(&id) else {
                debug_assert!(false, "unassigned {id} is not tracked");
                return false;
            };
            if rec.remaining_time(now) <= 0.0 {
                rec.state = TaskState::Expired;
                expired.push(id);
                false
            } else {
                true
            }
        });
        expired
    }

    /// Sheds unassigned tasks, lowest reward first, until at most `keep`
    /// remain queued — the graceful-degradation path when the live
    /// worker pool collapses. Shed tasks are retired as
    /// [`TaskState::Expired`] (they leave the repository without being
    /// served); ties break on task id so shedding is deterministic.
    /// Returns the shed ids in shedding order.
    pub fn shed_lowest_value(&mut self, keep: usize) -> Vec<TaskId> {
        if self.unassigned.len() <= keep {
            return Vec::new();
        }
        let mut by_value: Vec<TaskId> = self.unassigned.clone();
        by_value.sort_by(|&a, &b| {
            let ra = self.tasks.get(&a).map(|r| r.task.reward).unwrap_or(0.0);
            let rb = self.tasks.get(&b).map(|r| r.task.reward).unwrap_or(0.0);
            ra.total_cmp(&rb).then(a.cmp(&b))
        });
        let shed: Vec<TaskId> = by_value[..self.unassigned.len() - keep].to_vec();
        for &id in &shed {
            if let Some(rec) = self.tasks.get_mut(&id) {
                rec.state = TaskState::Expired;
            }
        }
        self.unassigned.retain(|id| !shed.contains(id));
        shed
    }

    /// Removes up to `max` unassigned tasks from the registry entirely,
    /// oldest first, and returns their records — the eviction half of a
    /// cross-shard handoff. Unlike [`shed_lowest_value`], the tasks are
    /// not retired: ownership transfers to the caller, who re-submits
    /// them on another server. Assigned tasks are never taken.
    ///
    /// [`shed_lowest_value`]: TaskManagementComponent::shed_lowest_value
    pub fn take_unassigned(&mut self, max: usize) -> Vec<TaskRecord> {
        let n = max.min(self.unassigned.len());
        let taken_ids: Vec<TaskId> = self.unassigned.drain(..n).collect();
        taken_ids
            .into_iter()
            .filter_map(|id| self.tasks.remove(&id))
            .collect()
    }

    /// Removes retired (completed/expired) records older than `horizon`
    /// seconds before `now`, returning how many were pruned. Keeps the
    /// registry from growing without bound in long simulations.
    pub fn prune_retired(&mut self, now: f64, horizon: f64) -> usize {
        let before = self.tasks.len();
        self.tasks.retain(|_, rec| match rec.state {
            TaskState::Completed { completed_at, .. } => completed_at + horizon > now,
            TaskState::Expired => rec.deadline_at() + horizon > now,
            _ => true,
        });
        before - self.tasks.len()
    }

    /// Iterates over all records, in ascending task-id order.
    pub fn iter(&self) -> impl Iterator<Item = &TaskRecord> {
        self.tasks.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskCategory;
    use react_geo::GeoPoint;

    fn task(id: u64, deadline: f64) -> Task {
        Task::new(
            TaskId(id),
            GeoPoint::new(37.98, 23.72),
            deadline,
            0.05,
            TaskCategory(0),
            "t",
        )
    }

    #[test]
    fn submit_and_duplicate() {
        let mut tm = TaskManagementComponent::new();
        tm.submit(task(1, 60.0), 0.0).unwrap();
        assert_eq!(tm.len(), 1);
        assert_eq!(tm.unassigned(), &[TaskId(1)]);
        assert_eq!(
            tm.submit(task(1, 60.0), 1.0),
            Err(CoreError::DuplicateTask(TaskId(1)))
        );
        assert!(tm.record(TaskId(9)).is_err());
    }

    #[test]
    fn assignment_lifecycle() {
        let mut tm = TaskManagementComponent::new();
        tm.submit(task(1, 60.0), 10.0).unwrap();
        tm.mark_assigned(TaskId(1), WorkerId(4), 15.0).unwrap();
        assert_eq!(tm.unassigned_count(), 0);
        let rec = tm.record(TaskId(1)).unwrap();
        assert_eq!(rec.assignment_count, 1);
        assert_eq!(rec.state.assigned_worker(), Some(WorkerId(4)));
        // TTD = (10+60) − 15 = 55.
        assert_eq!(rec.time_to_deadline(), Some(55.0));
        assert_eq!(rec.elapsed_since_assignment(20.0), Some(5.0));
        assert_eq!(
            tm.assigned().collect::<Vec<_>>(),
            vec![(TaskId(1), WorkerId(4))]
        );
        assert_eq!(tm.assigned_count(), 1);
        // Complete before the deadline.
        let met = tm.complete(TaskId(1), WorkerId(4), 30.0).unwrap();
        assert!(met);
        assert!(matches!(
            tm.record(TaskId(1)).unwrap().state,
            TaskState::Completed {
                met_deadline: true,
                ..
            }
        ));
    }

    #[test]
    fn late_completion_is_recorded_as_missed() {
        let mut tm = TaskManagementComponent::new();
        tm.submit(task(1, 10.0), 0.0).unwrap();
        tm.mark_assigned(TaskId(1), WorkerId(1), 1.0).unwrap();
        let met = tm.complete(TaskId(1), WorkerId(1), 99.0).unwrap();
        assert!(!met);
    }

    #[test]
    fn complete_requires_matching_worker() {
        let mut tm = TaskManagementComponent::new();
        tm.submit(task(1, 60.0), 0.0).unwrap();
        tm.mark_assigned(TaskId(1), WorkerId(4), 0.0).unwrap();
        assert!(matches!(
            tm.complete(TaskId(1), WorkerId(5), 1.0),
            Err(CoreError::NotAssigned { .. })
        ));
    }

    #[test]
    fn recall_requeues_at_back() {
        let mut tm = TaskManagementComponent::new();
        tm.submit(task(1, 60.0), 0.0).unwrap();
        tm.submit(task(2, 60.0), 0.0).unwrap();
        tm.mark_assigned(TaskId(1), WorkerId(4), 0.0).unwrap();
        let from = tm.mark_unassigned(TaskId(1)).unwrap();
        assert_eq!(from, WorkerId(4));
        // Task 1 rejoins behind task 2.
        assert_eq!(tm.unassigned(), &[TaskId(2), TaskId(1)]);
        // Recalling an unassigned task is an error.
        assert!(tm.mark_unassigned(TaskId(2)).is_err());
        // Reassignment bumps the count.
        tm.mark_assigned(TaskId(1), WorkerId(5), 5.0).unwrap();
        assert_eq!(tm.record(TaskId(1)).unwrap().assignment_count, 2);
    }

    #[test]
    fn expiry_of_unassigned() {
        let mut tm = TaskManagementComponent::new();
        tm.submit(task(1, 10.0), 0.0).unwrap();
        tm.submit(task(2, 100.0), 0.0).unwrap();
        tm.mark_assigned(TaskId(2), WorkerId(1), 0.0).unwrap();
        tm.submit(task(3, 5.0), 0.0).unwrap();
        let expired = tm.expire_overdue_unassigned(20.0);
        assert_eq!(expired, vec![TaskId(1), TaskId(3)]);
        assert!(matches!(
            tm.record(TaskId(1)).unwrap().state,
            TaskState::Expired
        ));
        // Assigned task 2 untouched (soft deadline).
        assert!(tm.record(TaskId(2)).unwrap().state.is_open());
        assert_eq!(tm.unassigned_count(), 0);
    }

    #[test]
    fn remaining_time_goes_negative() {
        let mut tm = TaskManagementComponent::new();
        tm.submit(task(1, 10.0), 5.0).unwrap();
        let rec = tm.record(TaskId(1)).unwrap();
        assert_eq!(rec.deadline_at(), 15.0);
        assert_eq!(rec.remaining_time(12.0), 3.0);
        assert_eq!(rec.remaining_time(20.0), -5.0);
        assert_eq!(rec.time_to_deadline(), None);
        assert_eq!(rec.elapsed_since_assignment(20.0), None);
    }

    #[test]
    fn shed_lowest_value_drops_cheapest_first() {
        let mut tm = TaskManagementComponent::new();
        let mut with_reward = |id: u64, reward: f64| {
            let mut t = task(id, 600.0);
            t.reward = reward;
            tm.submit(t, 0.0).unwrap();
        };
        with_reward(1, 0.05);
        with_reward(2, 0.01);
        with_reward(3, 0.09);
        with_reward(4, 0.01);
        // Keep 2: both 0.01-reward tasks go, lower id first.
        let shed = tm.shed_lowest_value(2);
        assert_eq!(shed, vec![TaskId(2), TaskId(4)]);
        // Survivors keep their queue order; shed tasks are retired.
        assert_eq!(tm.unassigned(), &[TaskId(1), TaskId(3)]);
        assert!(matches!(
            tm.record(TaskId(2)).unwrap().state,
            TaskState::Expired
        ));
        // Nothing to shed when already at or below the cap.
        assert!(tm.shed_lowest_value(2).is_empty());
    }

    #[test]
    fn take_unassigned_transfers_oldest_first() {
        let mut tm = TaskManagementComponent::new();
        tm.submit(task(1, 60.0), 0.0).unwrap();
        tm.submit(task(2, 60.0), 1.0).unwrap();
        tm.submit(task(3, 60.0), 2.0).unwrap();
        tm.mark_assigned(TaskId(1), WorkerId(4), 3.0).unwrap();
        // Only unassigned tasks move, oldest (2) before (3).
        let taken = tm.take_unassigned(10);
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].task.id, TaskId(2));
        assert_eq!(taken[0].submitted_at, 1.0);
        assert_eq!(taken[1].task.id, TaskId(3));
        // Taken records are gone from the registry; the assigned task
        // stays untouched.
        assert!(tm.record(TaskId(2)).is_err());
        assert_eq!(tm.len(), 1);
        assert_eq!(tm.unassigned_count(), 0);
        assert_eq!(tm.assigned_count(), 1);
        // `max` caps the transfer.
        tm.submit(task(5, 60.0), 4.0).unwrap();
        tm.submit(task(6, 60.0), 5.0).unwrap();
        let taken = tm.take_unassigned(1);
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].task.id, TaskId(5));
        assert_eq!(tm.unassigned(), &[TaskId(6)]);
    }

    #[test]
    fn prune_retired_keeps_recent_and_open() {
        let mut tm = TaskManagementComponent::new();
        tm.submit(task(1, 10.0), 0.0).unwrap();
        tm.submit(task(2, 10.0), 0.0).unwrap();
        tm.submit(task(3, 1000.0), 0.0).unwrap();
        tm.mark_assigned(TaskId(1), WorkerId(1), 0.0).unwrap();
        tm.complete(TaskId(1), WorkerId(1), 5.0).unwrap();
        tm.expire_overdue_unassigned(50.0); // task 2 expires (task 3 still live)
        let pruned = tm.prune_retired(1000.0, 100.0);
        assert_eq!(pruned, 2, "completed task 1 and expired task 2");
        assert_eq!(tm.len(), 1);
        assert!(tm.record(TaskId(3)).is_ok());
    }
}
