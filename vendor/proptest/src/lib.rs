//! Offline vendored mini-proptest.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the slice of proptest this workspace's property tests
//! use: range/tuple/vec/map/flat-map/one-of strategies, the
//! `proptest!` runner macro and the `prop_assert*` family. Generation
//! is seeded deterministically per test case; there is **no
//! shrinking** — a failing case panics with its case index and seed so
//! it can be replayed, which is enough for a CI gate.

use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Error produced by a failing (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property does not hold.
    Fail(String),
    /// The generated input was rejected by `prop_assume!`.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from
    /// it, and draws from that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values passing `f`, retrying generation. Panics
    /// after 1000 consecutive rejections.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// Type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<V> {
    gen: Box<dyn Fn(&mut SmallRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        (self.gen)(rng)
    }
}

/// Strategy yielding a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// Uniform choice between boxed alternatives (see `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.gen::<f64>() * 1e9;
        if rng.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod option {
    //! `Option` strategies.

    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` a quarter of the time, `Some` of `inner` otherwise
    /// (proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen::<f64>() < 0.25 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vectors of `elem` values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod strategy {
    //! Re-exports mirroring proptest's module layout.
    pub use super::{BoxedStrategy, Just, Strategy, Union};
}

pub mod test_runner {
    //! Runner internals used by the `proptest!` expansion.
    pub use super::{ProptestConfig, TestCaseError};

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Drives one property: `cases` deterministic cases, panicking on
    /// the first failure with enough context to replay it.
    pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
    {
        let mut rejected = 0u32;
        let mut executed = 0u32;
        let mut case_idx = 0u64;
        while executed < config.cases {
            // Each case gets an independent, reproducible stream.
            let seed = 0x5eed_0000_0000_0000 ^ case_idx;
            let mut rng = SmallRng::seed_from_u64(seed);
            case_idx += 1;
            match case(&mut rng) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected < 4096,
                        "proptest '{name}': too many rejected inputs ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case {case_idx} (seed {seed:#x}): {msg}");
                }
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{any, Arbitrary, ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// Namespace alias so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?}) ({}:{})",
            stringify!($left), stringify!($right), l, r, file!(), line!()
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})", format!($($fmt)*), l, r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?}) ({}:{})",
            stringify!($left), stringify!($right), l, file!(), line!()
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (both: {:?})", format!($($fmt)*), l
            )));
        }
    }};
}

/// Rejects the current case (generates a replacement) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn` runs `cases` times over values
/// drawn from its argument strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::test_runner::run_property(stringify!($name), &config, |rng| {
                    $( let $arg = $crate::Strategy::generate(&($strategy), rng); )*
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $( $arg in $strategy ),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in -1.0f64..=1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn oneof_map_and_flat_map_compose(
            v in prop_oneof![
                (0u8..3).prop_map(|n| n as u32),
                (10u8..13).prop_map(|n| n as u32),
            ],
            w in (1usize..4).prop_flat_map(|n| collection::vec(Just(n), n..=n))
        ) {
            prop_assert!(v < 3 || (10..13).contains(&v));
            prop_assert_eq!(w.len(), w[0]);
        }
    }

    #[test]
    fn prop_assert_failure_reports() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_property(
                "always_fails",
                &ProptestConfig::with_cases(4),
                |_rng| {
                    prop_assert!(false, "doomed");
                    Ok(())
                },
            )
        });
        assert!(result.is_err());
    }
}
