//! MPMC channels in the `crossbeam::channel` API shape.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity; the message comes back.
    Full(T),
    /// Every receiver is gone; the message comes back.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(msg) | TrySendError::Disconnected(msg) => msg,
        }
    }

    /// True when the failure was a full bounded channel.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`]: empty and disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty but senders remain.
    Empty,
    /// Channel empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel empty and every sender is gone.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: Option<usize>,
}

/// The sending half; cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; cloneable (messages go to whichever receiver
/// takes them first).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded channel: `send` blocks while `cap` messages wait.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            // Wake receivers blocked on an empty queue so they can
            // observe the disconnection.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while a bounded channel is full. Fails
    /// only when every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.chan.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.chan.not_full.wait(st).unwrap();
                }
                _ => break,
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Attempts to send `msg` without blocking: a full bounded channel
    /// returns [`TrySendError::Full`] immediately, handing the message
    /// back so the caller can shed it (admission control).
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = self.chan.state.lock().unwrap();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.chan.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            // Wake senders blocked on a full queue so they can fail.
            self.chan.not_full.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.state.lock().unwrap();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.chan.not_empty.wait(st).unwrap();
        }
    }

    /// Like [`recv`](Self::recv) with an upper wait bound.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.chan.state.lock().unwrap();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, wait) = self
                .chan
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap();
            st = guard;
            if wait.timed_out() && st.queue.is_empty() {
                return if st.senders == 0 {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    /// Like [`recv`](Self::recv), giving up at an absolute deadline.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        let now = Instant::now();
        self.recv_timeout(deadline.saturating_duration_since(now))
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.state.lock().unwrap();
        if let Some(msg) = st.queue.pop_front() {
            drop(st);
            self.chan.not_full.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Whether no message is currently buffered.
    pub fn is_empty(&self) -> bool {
        self.chan.state.lock().unwrap().queue.is_empty()
    }

    /// Number of currently buffered messages.
    pub fn len(&self) -> usize {
        self.chan.state.lock().unwrap().queue.len()
    }

    /// Blocking iterator draining the channel until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Ties a disconnection result's message type to its receiver — used by
/// the `select!` expansion so `_`-style arm patterns still infer.
pub fn disconnected_result<T>(_rx: &Receiver<T>) -> Result<T, RecvError> {
    Err(RecvError)
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Subset of crossbeam's `select!`: any number of
/// `recv(rx) -> msg => body` arms plus a mandatory
/// `default(timeout) => body` arm.
///
/// Polls the receivers in declaration order until one yields a message
/// (or disconnects — the arm then fires with `Err`), or the timeout
/// elapses and the default arm fires. Polling uses a short sleep
/// instead of crossbeam's parked-thread wakeups; at the tick periods
/// this workspace selects with (milliseconds and up) the difference is
/// noise.
#[macro_export]
macro_rules! select {
    ( $( recv($rx:expr) -> $msg:pat => $body:expr , )+ default($timeout:expr) => $default:expr $(,)? ) => {{
        let deadline = ::std::time::Instant::now() + $timeout;
        loop {
            // Each arm either fires (breaking the loop) or falls
            // through to the next; empty channels reach the timeout
            // check below.
            $(
                match $crate::channel::Receiver::try_recv(&$rx) {
                    ::std::result::Result::Ok(m) => {
                        #[allow(unreachable_code)]
                        {
                            let $msg: ::std::result::Result<_, $crate::channel::RecvError> =
                                ::std::result::Result::Ok(m);
                            $body;
                            break;
                        }
                    }
                    ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                        #[allow(unreachable_code)]
                        {
                            let $msg = $crate::channel::disconnected_result(&$rx);
                            $body;
                            break;
                        }
                    }
                    ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
            )+
            if ::std::time::Instant::now() >= deadline {
                $default;
                break;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(500));
        }
    }};
}

pub use crate::select;

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv(), Ok(5));
    }

    #[test]
    fn recv_drains_before_reporting_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).map_err(|_| ()));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn try_send_reports_full_without_blocking() {
        let (tx, rx) = bounded(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        let err = tx.try_send(3).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 3);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn try_send_reports_disconnected_and_unbounded_never_fills() {
        let (tx, rx) = unbounded();
        for i in 0..1000 {
            assert_eq!(tx.try_send(i), Ok(()));
        }
        drop(rx);
        let err = tx.try_send(1000).unwrap_err();
        assert!(!err.is_full());
        assert_eq!(err.into_inner(), 1000);
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let t = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn select_macro_receives_and_defaults() {
        let (tx, rx) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        tx.send(9).unwrap();
        let mut got = None;
        select! {
            recv(rx) -> msg => got = msg.ok(),
            recv(rx2) -> _msg => unreachable!("rx2 is empty"),
            default(Duration::from_millis(5)) => {}
        }
        assert_eq!(got, Some(9));
        let defaulted = std::cell::Cell::new(false);
        select! {
            recv(rx) -> _msg => panic!("rx is empty now"),
            recv(rx2) -> _msg => panic!("rx2 still empty"),
            default(Duration::from_millis(5)) => defaulted.set(true),
        }
        assert!(defaulted.get());
    }
}
