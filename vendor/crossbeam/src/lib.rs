//! Offline vendored subset of `crossbeam`.
//!
//! Provides `crossbeam::channel` — MPMC channels (bounded and
//! unbounded) built on `Mutex` + `Condvar` — plus a `select!` macro
//! covering the receive-or-timeout shape this workspace uses. The
//! semantics match crossbeam where the workspace depends on them:
//! cloneable senders *and* receivers, `recv` on a channel whose senders
//! are all gone drains buffered messages before reporting
//! disconnection, and bounded `send` blocks while the buffer is full.

pub mod channel;
