//! Offline vendored subset of `parking_lot`, backed by `std::sync`.
//!
//! Only the API this workspace uses: `Mutex` and `RwLock` with
//! non-poisoning guards. Poisoned locks (a panic while held) simply
//! propagate the inner value, matching parking_lot's behaviour of not
//! tracking poison at all.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// Non-poisoning mutex, mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("data", &&*self.lock())
            .finish()
    }
}

/// Non-poisoning reader-writer lock, mirroring `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
