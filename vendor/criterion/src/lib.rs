//! Offline vendored mini-criterion.
//!
//! Implements the criterion 0.5 API surface the workspace's benches
//! use (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `BenchmarkId`, `Bencher::iter`) with a simple median-of-samples
//! timer instead of criterion's full statistical machinery. Results
//! print one line per benchmark; there are no HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id from a function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id from a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the measured closure; call [`iter`](Bencher::iter).
pub struct Bencher {
    samples: usize,
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, recording the median over the sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then `samples` timed calls.
        black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.result = Some(times[times.len() / 2]);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (criterion's minimum is 10;
    /// this harness accepts any nonzero value).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be nonzero");
        self.sample_size = n;
        self
    }

    /// Ignored; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher {
            samples: self.sample_size,
            result: None,
        };
        routine(&mut b);
        self.report(&id, b.result);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        let mut b = Bencher {
            samples: self.sample_size,
            result: None,
        };
        routine(&mut b, input);
        self.report(&id, b.result);
        self
    }

    fn report(&mut self, id: &str, result: Option<Duration>) {
        match result {
            Some(median) => {
                println!(
                    "{}/{}: median {:?} ({} samples)",
                    self.name, id, median, self.sample_size
                );
                self.criterion.completed += 1;
            }
            None => println!("{}/{}: no measurement (iter never called)", self.name, id),
        }
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    completed: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id();
        self.benchmark_group(name)
            .sample_size(10)
            .bench_function("", routine);
        self
    }

    /// Criterion's configure-from-CLI entry point; accepted as a no-op.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group function that runs each listed bench function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.completed, 2);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
