//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to
//! crates.io, so the workspace vendors the narrow slice of `rand` it
//! actually uses. The implementation is deliberately bit-compatible
//! with `rand` 0.8 where reproducibility matters:
//!
//! * [`rngs::SmallRng`] is xoshiro256++ (the 64-bit `SmallRng` of
//!   rand 0.8), including rand_core's PCG32-based `seed_from_u64`
//!   expansion, so seeded streams match the real crate bit-for-bit.
//! * `Rng::gen::<f64>()` uses the same 53-bit multiply mapping into
//!   `[0, 1)`.
//!
//! * `Rng::gen_range` mirrors rand 0.8.5's `sample_single` /
//!   `sample_single_inclusive`: widening-multiply with zone rejection
//!   for integers, the `[1, 2)` mantissa trick for floats — so code
//!   seeded against the real crate draws the same values here.

use std::ops::{Range, RangeInclusive};

/// The core trait: a source of random `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // rand 0.8's Standard for f64: 53 random bits scaled to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) as f32))
    }
}

impl Standard for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // rand 0.8 samples bool from the sign bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// rand 0.8.5 `UniformInt::sample_single_inclusive`, verbatim in
// structure: `$unsigned` is the same-width unsigned type, `$u_large`
// the word the widening multiply runs in, `$next` the RngCore source
// for one `$u_large`.
macro_rules! impl_int_range {
    ($(($t:ty, $unsigned:ty, $u_large:ty, $next:ident)),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start..=self.end - 1).sample_from(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range = (high.wrapping_sub(low)).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // Full type range: every word is acceptable.
                    return rng.$next() as $t;
                }
                let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = rng.$next() as $u_large;
                    let (hi, lo) = wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

trait WideningMul: Sized {
    fn widening(self, other: Self) -> (Self, Self);
}
impl WideningMul for u32 {
    fn widening(self, other: u32) -> (u32, u32) {
        let wide = self as u64 * other as u64;
        ((wide >> 32) as u32, wide as u32)
    }
}
impl WideningMul for u64 {
    fn widening(self, other: u64) -> (u64, u64) {
        let wide = self as u128 * other as u128;
        ((wide >> 64) as u64, wide as u64)
    }
}
impl WideningMul for usize {
    fn widening(self, other: usize) -> (usize, usize) {
        let wide = self as u128 * other as u128;
        ((wide >> 64) as usize, wide as usize)
    }
}

fn wmul<T: WideningMul>(a: T, b: T) -> (T, T) {
    a.widening(b)
}

impl_int_range!(
    (u8, u8, u32, next_u32),
    (u16, u16, u32, next_u32),
    (u32, u32, u32, next_u32),
    (u64, u64, u64, next_u64),
    (usize, usize, usize, next_u64),
    (i8, u8, u32, next_u32),
    (i16, u16, u32, next_u32),
    (i32, u32, u32, next_u32),
    (i64, u64, u64, next_u64),
    (isize, usize, usize, next_u64),
);

// rand 0.8.5 `UniformFloat`: draw in [1, 2) via the mantissa trick,
// then `value1_2 * scale + (low - scale)`. The exclusive form rejects
// results that round up to `high`, shrinking `scale` by one ulp per
// retry; the inclusive form takes the single draw as-is.
macro_rules! impl_float_range {
    ($(($t:ty, $bits:ty, $next:ident, $discard:expr, $exp_one:expr)),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (self.start, self.end);
                assert!(low < high, "cannot sample empty range");
                let mut scale = high - low;
                assert!(scale.is_finite(), "range overflow");
                loop {
                    let value1_2 =
                        <$t>::from_bits($exp_one | (rng.$next() >> $discard));
                    let res = value1_2 * scale + (low - scale);
                    if res < high {
                        return res;
                    }
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let scale = high - low;
                assert!(scale.is_finite(), "range overflow");
                let value1_2 = <$t>::from_bits($exp_one | (rng.$next() >> $discard));
                value1_2 * scale + (low - scale)
            }
        }
    )*};
}

impl_float_range!(
    (f32, u32, next_u32, 9u32, 0x3f80_0000u32),
    (f64, u64, next_u64, 12u64, 0x3ff0_0000_0000_0000u64),
);

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed using rand_core 0.6's PCG32
    /// stream (bit-compatible with the real crate).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the 64-bit `SmallRng` of rand 0.8.
    ///
    /// Streams (including `seed_from_u64` expansion) are bit-identical
    /// to `rand::rngs::SmallRng` 0.8 on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro cannot run from the all-zero state.
                s = [
                    0x9e3779b97f4a7c15,
                    0xbf58476d1ce4e5b9,
                    0x94d049bb133111eb,
                    0x2545f4914f6cdd1d,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // Upper bits: the low bits of ++ scramblers are weaker.
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::SmallRng as StdRng;

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_f64_is_in_unit_interval_and_uniformish() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(5u32..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&y));
            let z = rng.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
