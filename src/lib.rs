//! # REACT — REAl-time schEduling for Crowd-based Tasks
//!
//! A Rust reproduction of *"Crowdsourcing under Real-Time Constraints"*
//! (Boutsis & Kalogeraki, IPDPS 2013): a middleware that dynamically
//! assigns crowdsourcing tasks to the most appropriate human workers
//! under soft real-time deadlines, using an online weighted bipartite
//! matching heuristic and a power-law execution-time model that recalls
//! assignments predicted to miss their deadline.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — the middleware itself ([`core::ReactServer`] and its four
//!   components);
//! * [`matching`] — the bipartite graph and all WBGM algorithms;
//! * [`prob`] — power-law fitting and the Eq. (2)/(3) deadline model;
//! * [`crowd`] — synthetic crowd behaviour, workload generation and the
//!   end-to-end simulation runner;
//! * [`faults`] — declarative fault-injection plans (dropout,
//!   stragglers, message loss/duplication, bursts) for chaos runs;
//! * [`cluster`] — sharded cluster mode: one server per router cell with
//!   cross-shard task handoff, idle-worker rebalancing and admission
//!   caps;
//! * [`sim`] — the discrete-event kernel;
//! * [`geo`] — regions, routing and distances;
//! * [`runtime`] — the live threaded deployment, including the TCP
//!   ingest front-end with admission control;
//! * [`load`] — the seeded open-loop load generator that drives the
//!   ingest door over real sockets;
//! * [`metrics`] — counters, series, tables, CSV;
//! * [`obs`] — structured observability: spans, counters, histograms
//!   and the sinks that record or export them.
//!
//! ## Quickstart
//!
//! ```
//! use react::core::prelude::*;
//!
//! let mut config = Config::paper_defaults();
//! config.batch = BatchTrigger { min_unassigned: 1, period: None };
//! config.charge_matching_time = false;
//! let mut server = ServerBuilder::new(config).seed(42).build().unwrap();
//!
//! let athens = GeoPoint::new(37.98, 23.72);
//! server.register_worker(WorkerId(1), athens);
//! server.submit_task(
//!     Task::new(TaskId(1), athens, 60.0, 0.05, TaskCategory(0), "Is road A congested?"),
//!     0.0,
//! );
//! let outcome = server.tick(0.0);
//! assert_eq!(outcome.assignments, vec![(WorkerId(1), TaskId(1))]);
//!
//! let done = server.complete_task(TaskId(1), WorkerId(1), 12.0, true).unwrap();
//! assert!(done.met_deadline);
//! ```

pub use react_cluster as cluster;
pub use react_core as core;
pub use react_crowd as crowd;
pub use react_faults as faults;
pub use react_geo as geo;
pub use react_load as load;
pub use react_matching as matching;
pub use react_metrics as metrics;
pub use react_obs as obs;
pub use react_prob as prob;
pub use react_runtime as runtime;
pub use react_sim as sim;
