//! Determinism guarantees of the parallel execution paths: scoped-thread
//! region execution and scoped-thread graph instantiation must be
//! bit-identical to their serial baselines, at any thread count.

use react::core::{
    Config, GraphBuilder, MatcherPolicy, ProfilingComponent, Task, TaskCategory, TaskId,
    TaskManagementComponent, WorkerId,
};
use react::crowd::{MultiRegionRunner, MultiRegionScenario, Scenario};
use react::geo::GeoPoint;

#[test]
fn parallel_region_execution_matches_serial() {
    let mut global = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, 21);
    global.n_workers = 48;
    global.arrival_rate = 4.0;
    global.total_tasks = 160;
    let runner = MultiRegionRunner::new(MultiRegionScenario {
        global,
        rows: 2,
        cols: 2,
    });
    let serial = runner.run_serial();
    let parallel = runner.run_parallel();
    assert!(
        serial.identical(&parallel),
        "scoped-thread region execution diverged from the serial baseline"
    );
    assert!(serial.identical(&runner.run()), "default entry point");
    assert!(serial.met_deadline() > 0, "run did real work");
}

#[test]
fn parallel_graph_build_matches_serial_at_any_thread_count() {
    let config = Config::with_matcher(MatcherPolicy::React { cycles: 100 });
    let here = GeoPoint::new(37.98, 23.72);
    let mut profiling = ProfilingComponent::default();
    for w in 0..90u64 {
        profiling.register(WorkerId(w), here).unwrap();
        // Season workers past training with spread latencies so phase A
        // fits real deadline models and Eq. (3) pruning participates.
        let base = 1.0 + (w % 6) as f64 * 8.0;
        for s in 0..3u64 {
            profiling.record_assignment(WorkerId(w)).unwrap();
            profiling
                .record_completion(
                    WorkerId(w),
                    TaskCategory((w % 2) as u32),
                    base + s as f64,
                    true,
                )
                .unwrap();
        }
    }
    let mut tasks = TaskManagementComponent::new();
    for t in 0..40u64 {
        tasks
            .submit(
                Task::new(
                    TaskId(t),
                    here,
                    15.0 + (t % 4) as f64 * 25.0,
                    0.05,
                    TaskCategory((t % 2) as u32),
                    "t",
                ),
                0.0,
            )
            .unwrap();
    }
    let builder = GraphBuilder::prepare(&config, &mut profiling);
    let (serial_graph, sw, st, sp) = builder.instantiate_serial(&profiling, &tasks, 0.0);
    assert!(
        serial_graph.n_edges() > 0,
        "seasoned pool instantiates edges"
    );
    for threads in [1, 2, 3, 7, 16] {
        let (par_graph, pw, pt, pp) =
            builder.instantiate_parallel(&profiling, &tasks, 0.0, threads);
        assert_eq!(serial_graph.edges(), par_graph.edges(), "{threads} threads");
        assert_eq!(sw, pw);
        assert_eq!(st, pt);
        assert_eq!(sp, pp);
    }
}
