//! Integration coverage for the matcher engine layer: every
//! `MatcherPolicy` the middleware accepts must flow through the
//! object-safe engine API (`MatcherSpec` → `MatcherEngine` /
//! `MatcherRegistry`) and behave exactly like a throwaway matcher.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use react::core::prelude::*;
use react::matching::{BipartiteGraph, MatchContext, MatcherEngine, MatcherRegistry};

fn all_policies() -> Vec<MatcherPolicy> {
    vec![
        MatcherPolicy::React { cycles: 60 },
        MatcherPolicy::ReactAdaptive { kappa: 0.8 },
        MatcherPolicy::Metropolis { cycles: 60 },
        MatcherPolicy::Greedy,
        MatcherPolicy::Traditional,
        MatcherPolicy::Hungarian,
        MatcherPolicy::Auction,
        MatcherPolicy::MaxCardinality,
    ]
}

#[test]
fn every_policy_runs_through_the_engine() {
    let graph = BipartiteGraph::full(5, 5, |u, v| ((u.0 * 3 + v.0) % 7) as f64 / 7.0).unwrap();
    for policy in all_policies() {
        let spec = policy.spec();
        assert_eq!(spec.name(), policy.name(), "spec/policy names agree");

        let mut engine = MatcherEngine::new(spec);
        let mut rng_a = SmallRng::seed_from_u64(7);
        let mut rng_b = SmallRng::seed_from_u64(7);
        for _ in 0..3 {
            let via_engine =
                engine.assign(&graph, &mut MatchContext::new(&mut rng_a, graph.n_edges()));
            via_engine.verify(&graph);
            let throwaway = policy.build(graph.n_edges()).assign(&graph, &mut rng_b);
            assert_eq!(via_engine.pairs, throwaway.pairs, "{}", policy.name());
            assert_eq!(via_engine.total_weight, throwaway.total_weight);
        }
        // Fixed-budget specs build once; only the adaptive spec may
        // rebuild, and with a constant edge budget even it must not.
        assert_eq!(engine.rebuilds(), 1, "{}", policy.name());
    }
}

#[test]
fn registry_resolves_every_policy_name() {
    let registry = MatcherRegistry::with_builtins();
    for policy in all_policies() {
        // `react-adaptive` registers under its own name even though the
        // built matcher reports the base algorithm's name.
        let key = match policy {
            MatcherPolicy::ReactAdaptive { .. } => "react-adaptive",
            _ => policy.name(),
        };
        assert!(registry.contains(key), "registry missing {key}");
        let matcher = registry.build(key, 32).expect("builtin builds");
        assert_eq!(matcher.name(), policy.name());
    }
}

#[test]
fn server_caches_matcher_across_batches() {
    let mut config = Config::paper_defaults();
    config.matcher = MatcherPolicy::React { cycles: 100 };
    config.batch = BatchTrigger {
        min_unassigned: 1,
        period: None,
    };
    config.charge_matching_time = false;
    let mut server = ServerBuilder::new(config)
        .seed(11)
        .build()
        .expect("valid config");
    let athens = GeoPoint::new(37.98, 23.72);
    for w in 0..4 {
        server.register_worker(WorkerId(w), athens);
    }
    let mut now = 0.0;
    for t in 0..6u64 {
        server.submit_task(
            Task::new(TaskId(t), athens, 90.0, 0.05, TaskCategory(0), "t"),
            now,
        );
        let outcome = server.tick(now);
        for &(w, task) in &outcome.assignments {
            server.complete_task(task, w, 1.0, true).unwrap();
        }
        now += 5.0;
    }
    assert!(server.matcher_rebuilds() >= 1, "at least one batch matched");
    assert_eq!(
        server.matcher_rebuilds(),
        1,
        "fixed-cycle policy must reuse the cached matcher across batches"
    );
}
