//! Property tests for the simulation kernel and the spatial substrate.

use proptest::prelude::*;
use react::geo::{BoundingBox, GeoPoint, RegionGrid, RegionRouter, TieredGrid};
use react::sim::{RngStreams, SimTime, Simulator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn simulator_pops_in_nondecreasing_time_order(
        times in proptest::collection::vec(0.0f64..1e6, 1..200)
    ) {
        let mut sim: Simulator<usize> = Simulator::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_secs(t), i);
        }
        let mut last = 0.0;
        let mut popped = 0;
        while let Some((at, _)) = sim.next_event() {
            prop_assert!(at.as_secs() >= last);
            last = at.as_secs();
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
        prop_assert_eq!(sim.processed(), times.len() as u64);
    }

    #[test]
    fn simultaneous_events_preserve_fifo(
        n in 1usize..100, t in 0.0f64..100.0
    ) {
        let mut sim: Simulator<usize> = Simulator::new();
        for i in 0..n {
            sim.schedule_at(SimTime::from_secs(t), i);
        }
        let order: Vec<usize> =
            std::iter::from_fn(|| sim.next_event().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn rng_streams_reproducible_and_label_sensitive(seed in any::<u64>()) {
        use rand::Rng;
        let streams = RngStreams::new(seed);
        let a: Vec<u64> = {
            let mut r = streams.stream("alpha");
            (0..8).map(|_| r.gen()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = streams.stream("alpha");
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = streams.stream("beta");
            (0..8).map(|_| r.gen()).collect()
        };
        prop_assert_eq!(&a, &a2);
        prop_assert_ne!(&a, &b);
    }

    #[test]
    fn grid_locate_is_the_inverse_of_cell(
        rows in 1u32..12, cols in 1u32..12,
        lat in 0.0f64..0.999, lon in 0.0f64..0.999,
    ) {
        let area = BoundingBox::new(0.0, 1.0, 0.0, 1.0).unwrap();
        let grid = RegionGrid::new(area, rows, cols).unwrap();
        let p = GeoPoint::new(lat, lon);
        let id = grid.locate(&p).expect("inside the area");
        let cell = grid.cell(id).expect("valid id");
        prop_assert!(cell.contains(&p));
        // And the point belongs to exactly one cell.
        let owners = grid
            .region_ids()
            .filter(|&r| grid.cell(r).unwrap().contains(&p))
            .count();
        prop_assert_eq!(owners, 1);
    }

    #[test]
    fn tiered_grid_parents_are_consistent(
        rows in 1u32..9, cols in 1u32..9,
        lat in 0.0f64..0.999, lon in 0.0f64..0.999,
    ) {
        let area = BoundingBox::new(0.0, 1.0, 0.0, 1.0).unwrap();
        let tiers = TieredGrid::new(area, rows, cols).unwrap();
        let p = GeoPoint::new(lat, lon);
        let ids = tiers.locate_all(&p);
        prop_assert_eq!(ids.len(), tiers.depth());
        // Walking parents from the finest tier reproduces coarser
        // containment: each tier's located cell contains the point.
        for (tier, id) in ids.iter().enumerate() {
            let cell = tiers.tier(tier).unwrap().cell(*id).unwrap();
            prop_assert!(cell.contains(&p));
        }
    }

    #[test]
    fn router_always_routes_interior_points(
        rows in 1u32..6, cols in 1u32..6,
        points in proptest::collection::vec((0.0f64..0.999, 0.0f64..0.999), 1..50),
    ) {
        let area = BoundingBox::new(0.0, 1.0, 0.0, 1.0).unwrap();
        let grid = RegionGrid::new(area, rows, cols).unwrap();
        let mut router = RegionRouter::new(&grid, 10);
        for &(lat, lon) in &points {
            let p = GeoPoint::new(lat, lon);
            prop_assert!(router.register(&p).is_some());
        }
        // Splitting never loses coverage.
        router.split_overloaded();
        for &(lat, lon) in &points {
            let p = GeoPoint::new(lat, lon);
            prop_assert!(router.route(&p).is_some());
        }
    }

    #[test]
    fn haversine_is_a_metric_sample(
        lat1 in -80.0f64..80.0, lon1 in -179.0f64..179.0,
        lat2 in -80.0f64..80.0, lon2 in -179.0f64..179.0,
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let d = a.distance_km(&b);
        prop_assert!(d >= 0.0);
        prop_assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
        prop_assert!(a.distance_km(&a) < 1e-9);
        // Never more than half the Earth's circumference.
        prop_assert!(d <= std::f64::consts::PI * react::geo::EARTH_RADIUS_KM + 1.0);
    }
}
