//! End-to-end lifecycle auditing: every task in a full simulated run —
//! including reassignments, churn-driven recalls and expiries — must
//! follow the legal lifecycle
//! `Submitted (Assigned (Recalled)?)* (Completed | Expired)?`
//! with non-decreasing timestamps and matching workers.

use react::core::{verify_lifecycles, MatcherPolicy, TaskEventKind};
use react::crowd::{ChurnParams, Scenario, ScenarioRunner};

fn audited_scenario(matcher: MatcherPolicy, seed: u64) -> Scenario {
    let mut sc = Scenario::smoke(matcher, seed);
    sc.config.audit = true;
    sc
}

#[test]
fn react_run_has_legal_lifecycles() {
    let r = ScenarioRunner::new(audited_scenario(MatcherPolicy::React { cycles: 300 }, 1)).run();
    let log = r.audit.as_ref().expect("audit enabled");
    assert!(!log.is_empty());
    let tasks_seen = verify_lifecycles(log);
    assert_eq!(tasks_seen as u64, r.received);
    // Recalls in the log match the report counter.
    let recalls = log
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TaskEventKind::Recalled { .. }))
        .count() as u64;
    assert_eq!(recalls, r.reassignments);
}

#[test]
fn traditional_run_has_legal_lifecycles() {
    let r = ScenarioRunner::new(audited_scenario(MatcherPolicy::Traditional, 2)).run();
    let log = r.audit.as_ref().expect("audit enabled");
    verify_lifecycles(log);
    // No Eq. (2) recalls under the traditional policy.
    assert!(log
        .events()
        .iter()
        .all(|e| !matches!(e.kind, TaskEventKind::Recalled { .. })));
}

#[test]
fn churny_run_has_legal_lifecycles() {
    let mut sc = audited_scenario(MatcherPolicy::React { cycles: 300 }, 3);
    sc.churn = Some(ChurnParams {
        mean_online: 20.0,
        offline_range: (5.0, 30.0),
    });
    let r = ScenarioRunner::new(sc).run();
    assert!(r.churn_events > 0);
    let log = r.audit.as_ref().expect("audit enabled");
    verify_lifecycles(log);
    // Completion events in the log match the report.
    let completions = log
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TaskEventKind::Completed { .. }))
        .count() as u64;
    assert_eq!(completions, r.completed);
    let expiries = log
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TaskEventKind::Expired))
        .count() as u64;
    assert!(expiries <= r.expired_unassigned);
}

#[test]
fn audit_is_off_by_default() {
    let r = ScenarioRunner::new(Scenario::smoke(MatcherPolicy::React { cycles: 300 }, 4)).run();
    assert!(r.audit.is_none());
}
