//! Cross-crate integration: middleware behaviour under adversarial
//! sequences (worker churn, stalls, duplicate traffic, expiry storms).

use react::core::prelude::*;
use react::core::Availability;
use react::matching::CostModel;

fn here() -> GeoPoint {
    GeoPoint::new(37.98, 23.72)
}

fn task(id: u64, deadline: f64) -> Task {
    Task::new(TaskId(id), here(), deadline, 0.05, TaskCategory(0), "t")
}

fn eager_server(seed: u64) -> ReactServer {
    let mut config = Config::paper_defaults();
    config.batch = BatchTrigger {
        min_unassigned: 1,
        period: None,
    };
    ServerBuilder::new(config)
        .seed(seed)
        .cost_model(CostModel::free())
        .build()
        .expect("valid config")
}

/// Builds a fast (≈ 2 s) profile so the Eq. (2) model is armed.
fn train(server: &mut ReactServer, worker: WorkerId, base_task: u64, now: &mut f64) {
    for i in 0..3 {
        server.submit_task(task(base_task + i, 60.0), *now);
        let out = server.tick(*now);
        assert!(
            out.assignments.iter().any(|&(w, _)| w == worker),
            "training task must reach the worker"
        );
        server
            .complete_task(TaskId(base_task + i), worker, *now + 2.0, true)
            .unwrap();
        *now += 5.0;
    }
}

#[test]
fn reassignment_chain_across_three_workers() {
    let mut server = eager_server(1);
    let mut now = 0.0;
    // Three workers, trained one at a time (the others join later so
    // training tasks always land on the intended worker).
    server.register_worker(WorkerId(1), here());
    train(&mut server, WorkerId(1), 100, &mut now);
    server.register_worker(WorkerId(2), here());
    // Worker 2 trains as well (worker 1 is also available, so give 2 an
    // explicit course: take worker 1 offline meanwhile).
    server.worker_offline(WorkerId(1), now);
    train(&mut server, WorkerId(2), 200, &mut now);
    server.worker_online(WorkerId(1)).unwrap();

    // A live task lands on one of them; that worker stalls, the task is
    // recalled and must end up completed by the other.
    server.submit_task(task(500, 90.0), now);
    let out = server.tick(now);
    let (first_worker, _) = out.assignments[0];
    // Stall long past the 2 s profile: recall fires.
    let mut recall_seen = false;
    let mut completed_by = None;
    for step in 1..60 {
        let t = now + step as f64;
        let out = server.tick(t);
        if !out.recalls.is_empty() {
            recall_seen = true;
        }
        if let Some(&(w, task_id)) = out.assignments.first() {
            assert_ne!(
                w, first_worker,
                "reassignment must pick the other trained worker"
            );
            server.complete_task(task_id, w, t + 2.0, true).unwrap();
            completed_by = Some(w);
            break;
        }
    }
    assert!(recall_seen, "Eq. (2) recall expected");
    assert!(completed_by.is_some(), "task must complete after recall");
}

#[test]
fn worker_churn_mid_assignment() {
    let mut server = eager_server(2);
    server.register_worker(WorkerId(1), here());
    server.submit_task(task(1, 60.0), 0.0);
    server.tick(0.0);
    // The worker disappears mid-task; the task must return to the pool
    // and flow to a newcomer.
    let recalled = server.worker_offline(WorkerId(1), 0.5);
    assert_eq!(recalled, vec![TaskId(1)]);
    server.register_worker(WorkerId(2), here());
    let out = server.tick(1.0);
    assert_eq!(out.assignments, vec![(WorkerId(2), TaskId(1))]);
    // The departed worker earns no completion.
    assert_eq!(
        server
            .profiling()
            .profile(WorkerId(1))
            .unwrap()
            .total_finished(),
        0
    );
    assert_eq!(
        server
            .profiling()
            .profile(WorkerId(1))
            .unwrap()
            .availability(),
        Availability::Offline
    );
}

#[test]
fn duplicate_submissions_and_registrations_are_idempotent() {
    let mut server = eager_server(3);
    server.register_worker(WorkerId(1), here());
    server.register_worker(WorkerId(1), here());
    server.submit_task(task(1, 60.0), 0.0);
    server.submit_task(task(1, 60.0), 0.0);
    assert_eq!(server.tasks().unassigned_count(), 1);
    let out = server.tick(0.0);
    assert_eq!(out.assignments.len(), 1);
}

#[test]
fn expiry_storm_under_no_workers() {
    let mut server = eager_server(4);
    for i in 0..50 {
        server.submit_task(task(i, 10.0 + i as f64 % 5.0), 0.0);
    }
    let out = server.tick(20.0);
    assert_eq!(out.expired.len(), 50, "all queued tasks expire");
    assert_eq!(server.tasks().unassigned_count(), 0);
    // Later arrivals still work.
    server.register_worker(WorkerId(1), here());
    server.submit_task(task(999, 60.0), 21.0);
    let out = server.tick(21.0);
    assert_eq!(out.assignments.len(), 1);
}

#[test]
fn traditional_assigns_to_busy_workers() {
    let mut config = Config::with_matcher(MatcherPolicy::Traditional);
    config.batch = BatchTrigger {
        min_unassigned: 1,
        period: None,
    };
    config.charge_matching_time = false;
    let mut server = ServerBuilder::new(config)
        .seed(5)
        .build()
        .expect("valid config");
    server.register_worker(WorkerId(1), here());
    // Two tasks, one worker: the AMT-style system assigns both anyway
    // (the second queues behind the first at the worker).
    server.submit_task(task(1, 60.0), 0.0);
    server.tick(0.0);
    server.submit_task(task(2, 60.0), 1.0);
    let out = server.tick(1.0);
    assert_eq!(
        out.assignments,
        vec![(WorkerId(1), TaskId(2))],
        "traditional must hand work to the busy worker too"
    );
    // Both complete in order.
    assert!(server
        .complete_task(TaskId(1), WorkerId(1), 5.0, true)
        .is_ok());
    assert!(server
        .complete_task(TaskId(2), WorkerId(1), 9.0, true)
        .is_ok());
}

#[test]
fn availability_aware_policy_never_double_books() {
    let mut server = eager_server(6);
    server.register_worker(WorkerId(1), here());
    server.submit_task(task(1, 60.0), 0.0);
    server.tick(0.0);
    server.submit_task(task(2, 60.0), 1.0);
    let out = server.tick(1.0);
    assert!(
        out.assignments.is_empty(),
        "REACT must not assign to a busy worker"
    );
}

#[test]
fn late_completion_after_expired_deadline_still_settles() {
    let mut server = eager_server(7);
    server.register_worker(WorkerId(1), here());
    server.submit_task(task(1, 10.0), 0.0);
    server.tick(0.0);
    // Deadline passes while assigned (soft real-time: no expiry).
    let out = server.tick(50.0);
    assert!(out.expired.is_empty());
    let done = server
        .complete_task(TaskId(1), WorkerId(1), 60.0, true)
        .unwrap();
    assert!(!done.met_deadline);
    assert!(!done.positive_feedback);
    // The slow execution entered the profile all the same.
    assert_eq!(
        server
            .profiling()
            .profile(WorkerId(1))
            .unwrap()
            .total_finished(),
        1
    );
}

#[test]
fn hungarian_policy_runs_end_to_end() {
    let mut config = Config::with_matcher(MatcherPolicy::Hungarian);
    config.batch = BatchTrigger {
        min_unassigned: 1,
        period: None,
    };
    config.charge_matching_time = false;
    let mut server = ServerBuilder::new(config)
        .seed(8)
        .build()
        .expect("valid config");
    for w in 0..4 {
        server.register_worker(WorkerId(w), here());
    }
    for t in 0..4 {
        server.submit_task(task(t, 60.0), 0.0);
    }
    let out = server.tick(0.0);
    assert_eq!(
        out.assignments.len(),
        4,
        "exact matcher saturates the batch"
    );
}
