//! Minute-long live soak through the TCP boundary, under faults.
//!
//! Ignored by default; run it explicitly with
//!
//! ```text
//! cargo test --test load_soak -- --ignored
//! ```
//!
//! The soak drives a deliberately under-provisioned ingest stack (small
//! bounded queue, low shed watermark, a fleet too slow for the offered
//! rate) with worker dropouts and task bursts injected mid-run, and
//! asserts the three overload guarantees:
//!
//! 1. the door→scheduler queue stays bounded — backpressure never turns
//!    into unbounded buffering;
//! 2. overload is shed gracefully — a non-zero but capped shed rate,
//!    with admissions continuing throughout;
//! 3. the conservation identity closes: every admitted task (including
//!    fault-injected bursts) completes, expires, is shed, or is
//!    accounted stranded. Nothing is lost silently.

use react::faults::{BurstPlan, DropoutPlan, FaultPlan};
use react::load::{build_trace, replay, Shape};
use react::runtime::{IngestConfig, IngestRuntime};

#[test]
#[ignore = "60s wall-clock soak; run with --ignored"]
fn overloaded_ingest_sheds_gracefully_and_conserves_tasks() {
    let plan = FaultPlan {
        dropout: Some(DropoutPlan {
            probability: 0.4,
            window: (300.0, 900.0),
            offline_range: Some((60.0, 300.0)),
        }),
        straggler: None,
        abandon_probability: 0.0,
        loss_probability: 0.0,
        duplication_probability: 0.0,
        bursts: Some(BurstPlan {
            count: 3,
            size: 50,
            window: (600.0, 1800.0),
        }),
    };
    plan.validate().expect("valid soak plan");

    let queue_capacity = 64;
    let config = IngestConfig {
        n_workers: 20,
        time_scale: 60.0,
        tick_interval: 1.0,
        seed: 2013,
        faults: Some(plan),
        queue_capacity,
        // Low watermark: the under-provisioned fleet must push the
        // backlog over it and exercise the 429 path for real.
        backlog_watermark: 96,
        // One acceptor per sender: connections are keep-alive for the
        // whole hour, and an acceptor serves one connection at a time —
        // fewer acceptors than senders would starve the surplus senders,
        // which is not the overload behaviour under test here.
        acceptors: 4,
        ..IngestConfig::default()
    };

    // 60 wall seconds at 60x compression = 3600 crowd seconds of
    // arrivals; 4.0 tasks/crowd-second is far beyond what 20 workers
    // clear, so the stack runs saturated for most of the hour.
    let tasks = 14_400;
    let trace = build_trace(
        Shape::Bursty {
            period: 120.0,
            size: 80,
        },
        4.0,
        tasks,
        2013,
    );

    let handle = IngestRuntime::new(config).start().expect("start stack");
    let stats = replay(handle.local_addr(), handle.clock(), &trace, 4);
    let report = handle.shutdown();

    assert_eq!(
        stats
            .transport_errors
            .load(std::sync::atomic::Ordering::Relaxed),
        0,
        "local replay must not lose requests in transport"
    );
    assert!(
        report.offered >= tasks as u64,
        "the whole trace reaches the door: {report:?}"
    );

    // Guarantee 1: the bounded queue is actually bounded.
    assert!(
        report.peak_queue_depth <= queue_capacity,
        "queue depth {} exceeded its bound {queue_capacity}",
        report.peak_queue_depth
    );

    // Guarantee 2: graceful shedding — some, not everything.
    assert!(
        report.shed_door > 0,
        "a saturated stack must shed at the door: {report:?}"
    );
    assert!(
        report.accepted > 0 && report.shed_rate() < 0.95,
        "shedding must stay capped while admissions continue: rate {:.3}, {report:?}",
        report.shed_rate()
    );

    // The fault plan really fired.
    assert_eq!(
        report.injected_burst, 150,
        "all three 50-task bursts injected: {report:?}"
    );

    // Guarantee 3: conservation, bursts included.
    assert!(
        report.conserved(),
        "accepted {} + burst {} must equal completed {} + expired {} + shed {} + stranded {}",
        report.accepted,
        report.injected_burst,
        report.completed,
        report.expired,
        report.shed_server,
        report.stranded
    );

    // The run did real work end to end, not just shedding.
    assert!(
        report.completed > 0 && !report.assign_latencies.is_empty(),
        "workers must complete tasks through the wire: {report:?}"
    );
}
