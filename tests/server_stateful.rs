//! Stateful property test: random operation sequences against the
//! middleware, checked against a simple reference model.
//!
//! Invariants enforced after every step:
//! * a worker never executes two tasks at once under an
//!   availability-aware policy;
//! * completed/expired tasks never come back;
//! * the unassigned pool plus in-flight assignments plus retired tasks
//!   account for every submission;
//! * operations on unknown ids fail without corrupting state.

use proptest::prelude::*;
use react::core::prelude::*;
use react::matching::CostModel;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    RegisterWorker(u64),
    SubmitTask { id: u64, deadline: f64 },
    Tick { dt: f64 },
    CompleteOldest { exec: f64, quality_ok: bool },
    WorkerOffline(u64),
    WorkerOnline(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..8).prop_map(Op::RegisterWorker),
        ((0u64..64), (5.0f64..90.0)).prop_map(|(id, deadline)| Op::SubmitTask { id, deadline }),
        (0.5f64..20.0).prop_map(|dt| Op::Tick { dt }),
        ((0.5f64..40.0), any::<bool>())
            .prop_map(|(exec, quality_ok)| Op::CompleteOldest { exec, quality_ok }),
        (0u64..8).prop_map(Op::WorkerOffline),
        (0u64..8).prop_map(Op::WorkerOnline),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_op_sequences_preserve_invariants(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let here = GeoPoint::new(37.98, 23.72);
        let mut config = Config::paper_defaults();
        config.batch = BatchTrigger { min_unassigned: 1, period: None };
        config.audit = true;
        let mut server = ServerBuilder::new(config)
            .seed(99)
            .cost_model(CostModel::free())
            .build()
            .expect("valid config");

        let mut now = 0.0f64;
        let mut submitted: HashSet<TaskId> = HashSet::new();
        // Reference view of live assignments: task → worker.
        let mut live: HashMap<TaskId, WorkerId> = HashMap::new();
        let mut retired: HashSet<TaskId> = HashSet::new();

        let apply_outcome = |out: &react::core::TickOutcome,
                                 live: &mut HashMap<TaskId, WorkerId>,
                                 retired: &mut HashSet<TaskId>| {
            for recall in &out.recalls {
                live.remove(&recall.task);
            }
            for task in &out.expired {
                live.remove(task);
                retired.insert(*task);
            }
            for &(worker, task) in &out.assignments {
                prop_assert!(!retired.contains(&task), "retired task reassigned");
                let clash = live.values().filter(|&&w| w == worker).count();
                prop_assert_eq!(clash, 0, "worker {:?} double-booked", worker);
                live.insert(task, worker);
            }
            Ok(())
        };

        for op in ops {
            match op {
                Op::RegisterWorker(w) => {
                    server.register_worker(WorkerId(w), here);
                }
                Op::SubmitTask { id, deadline } => {
                    // Duplicate ids are dropped by the server; the
                    // reference set mirrors that via insert()'s result.
                    submitted.insert(TaskId(id));
                    server.submit_task(
                        Task::new(TaskId(id), here, deadline, 0.05, TaskCategory(0), "t"),
                        now,
                    );
                }
                Op::Tick { dt } => {
                    now += dt;
                    let out = server.tick(now);
                    apply_outcome(&out, &mut live, &mut retired)?;
                }
                Op::CompleteOldest { exec, quality_ok } => {
                    if let Some((&task, &worker)) =
                        live.iter().min_by_key(|(t, _)| t.0)
                    {
                        now += exec;
                        let res = server.complete_task(task, worker, now, quality_ok);
                        prop_assert!(res.is_ok(), "live assignment must complete: {res:?}");
                        live.remove(&task);
                        retired.insert(task);
                    } else {
                        // Nothing live: completing an unknown pair must
                        // fail and change nothing.
                        prop_assert!(server
                            .complete_task(TaskId(9999), WorkerId(0), now, quality_ok)
                            .is_err());
                    }
                }
                Op::WorkerOffline(w) => {
                    for task in server.worker_offline(WorkerId(w), now) {
                        live.remove(&task);
                    }
                }
                Op::WorkerOnline(w) => {
                    let _ = server.worker_online(WorkerId(w));
                }
            }

            // Cross-check the server against the reference model.
            let assigned: Vec<_> = server.tasks().assigned().collect();
            prop_assert_eq!(assigned.len(), live.len(), "assignment count mismatch");
            for (task, worker) in &assigned {
                prop_assert_eq!(live.get(task), Some(worker), "assignment map diverged");
            }
            // Retired tasks never reappear as open.
            for task in &retired {
                if let Ok(rec) = server.tasks().record(*task) {
                    prop_assert!(
                        !rec.state.is_open(),
                        "retired {:?} came back as {:?}",
                        task,
                        rec.state
                    );
                }
            }
            // Conservation: every submission is open, live or retired.
            for task in &submitted {
                let rec = server.tasks().record(*task);
                prop_assert!(rec.is_ok(), "submitted task vanished: {:?}", task);
                match rec.unwrap().state {
                    TaskState::Unassigned => {}
                    TaskState::Assigned { .. } => {
                        prop_assert!(live.contains_key(task));
                    }
                    TaskState::Completed { .. } | TaskState::Expired => {
                        prop_assert!(retired.contains(task));
                    }
                }
            }
        }

        // The audit log, if any activity occurred, must be legal.
        if let Some(log) = server.audit() {
            react::core::verify_lifecycles(log);
        }
    }
}
