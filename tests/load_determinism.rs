//! Determinism properties of the load generator (proptest).
//!
//! The open-loop replay crosses a real TCP boundary, so wall-clock
//! noise is unavoidable in *latencies* — but everything upstream of the
//! wire must stay bit-deterministic, and everything downstream must
//! conserve tasks:
//!
//! 1. the same seed yields a byte-identical arrival trace for every
//!    shape/rate/size, and the published trace hash is the hash of
//!    exactly those bytes;
//! 2. replaying the same [`LoadParams`] twice through a live
//!    [`ScaledClock`] stack reproduces the admission ledger (offered,
//!    accepted, shed, rejected) and both runs conserve tasks;
//! 3. serial (one acceptor, one sender) and threaded (several of each)
//!    replays of one trace both close the conservation identity —
//!    submitted = completed + expired + shed + stranded.

use proptest::prelude::*;
use react::load::{build_trace, trace_hash, trace_text, LoadParams, Shape};
use react::metrics::fnv1a64;

/// Strategy: an arbitrary trace shape.
fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Poisson),
        (5.0f64..60.0, 5usize..40).prop_map(|(period, size)| Shape::Bursty { period, size }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1: the trace is a pure function of (shape, rate, n, seed).
    #[test]
    fn same_seed_yields_a_byte_identical_trace(
        shape in arb_shape(),
        rate in 0.5f64..20.0,
        n in 1usize..200,
        seed in any::<u64>(),
    ) {
        let a = build_trace(shape, rate, n, seed);
        let b = build_trace(shape, rate, n, seed);
        let text_a = trace_text(&a);
        let text_b = trace_text(&b);
        prop_assert_eq!(&text_a, &text_b, "same seed must replay byte-identically");
        prop_assert_eq!(trace_hash(&a), trace_hash(&b));
        prop_assert_eq!(
            trace_hash(&a),
            fnv1a64(text_a.as_bytes()),
            "the published hash is the hash of the published bytes"
        );
        // Arrivals are non-decreasing — the replay loop relies on it.
        for pair in a.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at, "trace must be time-sorted");
        }
    }

    /// Property 1b: the seed actually matters.
    #[test]
    fn different_seeds_yield_different_traces(
        shape in arb_shape(),
        seed in any::<u64>(),
    ) {
        let a = build_trace(shape, 5.0, 50, seed);
        let b = build_trace(shape, 5.0, 50, seed.wrapping_add(1));
        prop_assert_ne!(trace_text(&a), trace_text(&b));
    }
}

/// A sub-second live run: few tasks, aggressive time compression.
fn tiny_params(seed: u64, acceptors: usize, senders: usize) -> LoadParams {
    let mut params = LoadParams::quick();
    params.seed = seed;
    params.tasks = 48;
    params.rate = 12.0;
    params.time_scale = 600.0;
    params.n_workers = 8;
    params.acceptors = acceptors;
    params.senders = senders;
    // Large enough that nothing is shed: the ledger stays exact.
    params.queue_capacity = 512;
    params.backlog_watermark = 4096;
    params
}

proptest! {
    // Each case spins up two full TCP stacks; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property 2: the end-to-end admission ledger reproduces run-to-run.
    #[test]
    fn scaled_clock_replay_reproduces_the_admission_ledger(seed in any::<u64>()) {
        let params = tiny_params(seed, 1, 1);
        let first = react::load::run(&params).expect("first run");
        let second = react::load::run(&params).expect("second run");
        prop_assert_eq!(first.trace_hash, second.trace_hash, "same trace on the wire");
        prop_assert_eq!(first.offered, second.offered);
        prop_assert_eq!(first.accepted, second.accepted);
        prop_assert_eq!(first.shed_door, second.shed_door);
        prop_assert_eq!(first.rejected, second.rejected);
        prop_assert_eq!(first.offered, 48, "every trace entry reaches the door");
        prop_assert_eq!(first.shed_door, 0, "an over-provisioned queue sheds nothing");
        prop_assert!(first.conserved, "first run conserves tasks");
        prop_assert!(second.conserved, "second run conserves tasks");
    }

    /// Property 3: acceptor/sender threading never loses a task —
    /// submitted = completed + expired + shed + stranded, serial or not.
    #[test]
    fn serial_and_threaded_acceptors_conserve_tasks(seed in any::<u64>()) {
        for (acceptors, senders) in [(1usize, 1usize), (4, 4)] {
            let report = react::load::run(&tiny_params(seed, acceptors, senders))
                .expect("load run");
            prop_assert_eq!(
                report.offered, 48,
                "{}x{}: open-loop replay offers the whole trace", acceptors, senders
            );
            prop_assert_eq!(report.transport_errors, 0);
            prop_assert!(
                report.conserved,
                "{}x{}: conservation identity must close", acceptors, senders
            );
        }
    }
}
