//! The invariant layer exercised as a property: every matcher's output
//! must satisfy [`MatchingValidator::check_matching`] on random graphs,
//! independently of whether the `debug-invariants` feature (which wires
//! the same validator into the matchers themselves) is enabled.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use react::matching::{
    AuctionMatcher, BipartiteGraph, GreedyMatcher, HopcroftKarpMatcher, HungarianMatcher, Matcher,
    MatchingValidator, MetropolisMatcher, RandomMatcher, ReactMatcher, TaskIdx, WorkerIdx,
};

/// All seven matchers, heuristics configured with a small cycle budget.
fn all_matchers() -> Vec<Box<dyn Matcher>> {
    vec![
        Box::new(ReactMatcher::with_cycles(200)),
        Box::new(MetropolisMatcher::with_cycles(200)),
        Box::new(GreedyMatcher),
        Box::new(RandomMatcher),
        Box::new(HungarianMatcher),
        Box::new(AuctionMatcher::default()),
        Box::new(HopcroftKarpMatcher),
    ]
}

/// Strategy: a random sparse bipartite graph with up to 9×9 vertices.
fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1usize..9, 1usize..9).prop_flat_map(|(nu, nv)| {
        proptest::collection::vec((0..nu as u32, 0..nv as u32, 0.0f64..1.0), 0..=nu * nv).prop_map(
            move |edges| {
                let mut g = BipartiteGraph::new(nu, nv);
                for (u, v, w) in edges {
                    // Duplicate insertions are rejected; ignore them.
                    let _ = g.add_edge(WorkerIdx(u), TaskIdx(v), w);
                }
                g
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_matcher_passes_the_validator(graph in arb_graph(), seed in 0u64..1000) {
        for matcher in all_matchers() {
            let m = matcher.assign(&graph, &mut SmallRng::seed_from_u64(seed));
            let checked = MatchingValidator::new(&graph).check_matching(&m);
            prop_assert!(
                checked.is_ok(),
                "{}: {}", matcher.name(), checked.unwrap_err()
            );
        }
    }

    #[test]
    fn hungarian_never_loses_to_greedy(graph in arb_graph(), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let greedy = GreedyMatcher.assign(&graph, &mut rng);
        let optimal = HungarianMatcher.assign(&graph, &mut rng);
        prop_assert!(
            optimal.total_weight >= greedy.total_weight - 1e-9,
            "hungarian {} < greedy {}", optimal.total_weight, greedy.total_weight
        );
    }
}

/// The validator also rejects corrupted matchings — sanity-check the
/// negative direction once outside proptest.
#[test]
fn validator_rejects_phantom_edges() {
    let mut g = BipartiteGraph::new(2, 2);
    g.add_edge(WorkerIdx(0), TaskIdx(0), 0.5).unwrap();
    let phantom = react::matching::Matching::from_pairs(vec![(WorkerIdx(1), TaskIdx(1), 0.3)], 0.0);
    assert!(MatchingValidator::new(&g).check_matching(&phantom).is_err());
}
