//! Incremental-build identity: the hot-path [`BatchScratch`] must
//! produce graphs bit-identical to a cold [`SchedulingComponent`] build
//! after *any* interleaving of profile mutations, task churn and worker
//! dropouts — the property the epoch-keyed row cache and the memoized
//! deadline gates are designed to preserve.
//!
//! Run under `--features debug-invariants` to additionally arm the
//! scratch's internal cold-rebuild assertion on every step.

use proptest::prelude::*;
use react::core::{
    Availability, BatchScratch, Config, LatencyModelKind, MatcherPolicy, ProfilingComponent,
    SchedulingComponent, Task, TaskCategory, TaskId, TaskManagementComponent, WorkerId,
};
use react::crowd::{Scenario, ScenarioRunner};
use react::faults::FaultPlan;
use react::geo::GeoPoint;

fn here() -> GeoPoint {
    GeoPoint::new(37.98, 23.72)
}

/// One randomized step against the two components the graph build
/// reads. Every variant mutates state the row cache must notice.
#[derive(Debug, Clone)]
enum Op {
    /// Register (or re-register after dropout) a worker.
    Register(u64),
    /// Record a completed task with the given execution time — refits
    /// the latency model, so the cached row must be invalidated.
    Complete { worker: u64, exec: f64, ok: bool },
    /// Record an assignment (flips availability, advances training).
    Assign(u64),
    /// Worker dropout mid-run: the cached row must leave the pool.
    Offline(u64),
    /// Worker returns.
    Online(u64),
    /// Declare or clear a reward range (prunes edges).
    Reward {
        worker: u64,
        range: Option<(f64, f64)>,
    },
    /// Submit a task with the given deadline.
    Submit { id: u64, deadline: f64 },
    /// Assign the oldest unassigned task to a worker, then requeue it
    /// (exercises the assigned-index churn without retiring tasks).
    Churn { worker: u64 },
    /// Advance the build timepoint (changes every `TimeToDeadline`).
    AdvanceTime { dt: f64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..10).prop_map(Op::Register),
        ((0u64..10), (0.5f64..80.0), any::<bool>()).prop_map(|(worker, exec, ok)| Op::Complete {
            worker,
            exec,
            ok
        }),
        (0u64..10).prop_map(Op::Assign),
        (0u64..10).prop_map(Op::Offline),
        (0u64..10).prop_map(Op::Online),
        (
            (0u64..10),
            proptest::option::of((0.01f64..0.5, 0.5f64..2.0))
        )
            .prop_map(|(worker, range)| Op::Reward { worker, range }),
        ((0u64..200), (5.0f64..120.0)).prop_map(|(id, deadline)| Op::Submit { id, deadline }),
        (0u64..10).prop_map(|worker| Op::Churn { worker }),
        (0.5f64..15.0).prop_map(|dt| Op::AdvanceTime { dt }),
    ]
}

/// The latency-model kinds the gate must memoize correctly: the
/// power-law bracket, the empirical step gate, and the KS-driven
/// auto-selector that mixes both.
fn arb_latency_model() -> impl Strategy<Value = LatencyModelKind> {
    prop_oneof![
        Just(LatencyModelKind::PowerLaw),
        Just(LatencyModelKind::Empirical),
        Just(LatencyModelKind::Auto { ks_threshold: 0.3 }),
    ]
}

fn apply(op: &Op, p: &mut ProfilingComponent, tm: &mut TaskManagementComponent, now: &mut f64) {
    match *op {
        Op::Register(w) => {
            let _ = p.register(WorkerId(w), here());
        }
        Op::Complete { worker, exec, ok } => {
            let _ = p.record_completion(
                WorkerId(worker),
                TaskCategory((worker % 2) as u32),
                exec,
                ok,
            );
        }
        Op::Assign(w) => {
            let _ = p.record_assignment(WorkerId(w));
        }
        Op::Offline(w) => {
            let _ = p.set_availability(WorkerId(w), Availability::Offline);
        }
        Op::Online(w) => {
            let _ = p.set_availability(WorkerId(w), Availability::Available);
        }
        Op::Reward { worker, range } => {
            let _ = p.set_reward_range(WorkerId(worker), range);
        }
        Op::Submit { id, deadline } => {
            let _ = tm.submit(
                Task::new(
                    TaskId(id),
                    here(),
                    deadline,
                    0.05,
                    TaskCategory((id % 2) as u32),
                    "prop",
                ),
                *now,
            );
        }
        Op::Churn { worker } => {
            if let Some(&tid) = tm.unassigned().first() {
                if tm.mark_assigned(tid, WorkerId(worker), *now).is_ok() {
                    let _ = tm.mark_unassigned(tid);
                }
            }
        }
        Op::AdvanceTime { dt } => {
            *now += dt;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every step the incremental build (one scratch carried
    /// across the whole sequence) matches a cold build bit for bit:
    /// same edges, same worker/task index maps, same pruning count.
    #[test]
    fn incremental_build_is_bit_identical_to_cold_build(
        kind in arb_latency_model(),
        serial in any::<bool>(),
        ops in proptest::collection::vec(arb_op(), 1..60),
    ) {
        let mut config = Config::with_matcher(MatcherPolicy::React { cycles: 100 });
        config.latency_model = kind;
        let mut p = ProfilingComponent::default();
        let mut tm = TaskManagementComponent::new();
        let mut scratch = BatchScratch::new();
        if serial {
            scratch.set_threads(Some(1));
        }
        let mut now = 0.0f64;
        for op in &ops {
            apply(op, &mut p, &mut tm, &mut now);
            let built = scratch.build(&config, &mut p, &tm, now);
            let (cold_workers, cold_tasks, cold_pruned, cold_edges) = {
                let (g, w, t, pr) = SchedulingComponent::build_graph(&config, &mut p, &tm, now);
                (w, t, pr, g.edges().to_vec())
            };
            prop_assert_eq!(built.graph.edges(), &cold_edges[..], "edges diverged after {:?}", op);
            prop_assert_eq!(built.workers, &cold_workers[..]);
            prop_assert_eq!(built.task_ids, &cold_tasks[..]);
            prop_assert_eq!(built.pruned, cold_pruned);
            prop_assert!(built.stats.rows_reused <= built.stats.rows_total);
        }
    }
}

/// End-to-end determinism with faults active: a chaotic scenario driven
/// through the server's scratch-backed tick loop replays bit-identically
/// per seed, and worker dropouts mid-run (which mutate profiles outside
/// the batch path) never desynchronize the row cache. Under
/// `--features debug-invariants` every tick also cross-checks the
/// incremental graph against a cold rebuild.
#[test]
fn faulted_scenario_replays_identically_through_the_scratch() {
    let run = || {
        let mut sc = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, 1717);
        sc.label = "hotpath-faults".to_string();
        sc.n_workers = 40;
        sc.arrival_rate = 3.0;
        sc.total_tasks = 150;
        sc.config.audit = true;
        sc.faults = Some(FaultPlan::chaos(0.6));
        ScenarioRunner::new(sc).run()
    };
    let a = run();
    let b = run();
    assert!(
        a.faults.dropouts > 0,
        "the plan must actually inject dropouts: {:?}",
        a.faults
    );
    assert_eq!(
        a.completed + a.expired_unassigned + a.faults.stranded,
        a.received,
        "task conservation violated: {a:?}"
    );
    assert_eq!(
        a.audit.as_ref().unwrap().events(),
        b.audit.as_ref().unwrap().events(),
        "faulted run must be deterministic per seed"
    );
}
