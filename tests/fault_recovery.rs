//! Golden end-to-end fault-recovery scenarios.
//!
//! Each test drives a failure through the middleware and asserts the
//! exact audit-log event sequence under a fixed seed: worker dropout
//! mid-task, straggler slowdown caught by the Eq. (2) deadline model,
//! and completion-message loss recovered by the timeout ladder.

use react::core::{
    verify_lifecycles, BatchTrigger, Config, MatcherPolicy, ReactServer, RecoveryConfig, Task,
    TaskCategory, TaskEventKind, TaskId, WorkerId,
};
use react::crowd::{Scenario, ScenarioRunner};
use react::faults::{FaultPlan, StragglerPlan};
use react::geo::GeoPoint;
use react::matching::CostModel;

fn here() -> GeoPoint {
    GeoPoint::new(37.98, 23.72)
}

fn kinds(events: &[react::core::TaskEvent]) -> Vec<&'static str> {
    events
        .iter()
        .map(|e| match e.kind {
            TaskEventKind::Submitted => "submitted",
            TaskEventKind::Assigned { .. } => "assigned",
            TaskEventKind::Recalled { .. } => "recalled",
            TaskEventKind::Completed { .. } => "completed",
            TaskEventKind::Expired => "expired",
            TaskEventKind::Shed => "shed",
            TaskEventKind::HandedOff => "handed_off",
        })
        .collect()
}

/// Dropout mid-task: the held task is recalled at the instant the
/// worker disconnects and reassigned to the surviving worker, who
/// completes it. The audit log records exactly that story.
#[test]
fn dropout_mid_task_reassigns_and_completes() {
    let mut config = Config::paper_defaults();
    config.batch = BatchTrigger {
        min_unassigned: 1,
        period: None,
    };
    let mut server = ReactServer::builder(config)
        .seed(7)
        .cost_model(CostModel::free())
        .audit(true)
        .build()
        .unwrap();
    server.register_worker(WorkerId(1), here());
    server.register_worker(WorkerId(2), here());
    server.submit_task(
        Task::new(TaskId(1), here(), 120.0, 0.05, TaskCategory(0), "t"),
        0.0,
    );
    let out = server.tick(0.0);
    assert_eq!(out.assignments.len(), 1);
    let (first_worker, _) = out.assignments[0];

    // The assigned worker drops out mid-task.
    assert_eq!(server.worker_offline(first_worker, 10.0), vec![TaskId(1)]);
    let out = server.tick(10.0);
    assert_eq!(out.assignments.len(), 1, "the survivor picks it up");
    let (second_worker, _) = out.assignments[0];
    assert_ne!(second_worker, first_worker, "offline workers get nothing");
    server
        .complete_task(TaskId(1), second_worker, 25.0, true)
        .unwrap();

    let log = server.audit().unwrap();
    verify_lifecycles(log);
    let history = log.task_history(TaskId(1));
    assert_eq!(
        kinds(&history),
        vec!["submitted", "assigned", "recalled", "assigned", "completed"],
        "golden dropout sequence: {history:?}"
    );
    // The recall is attributed to the dropped worker, the completion to
    // the survivor.
    assert_eq!(
        history[2].kind,
        TaskEventKind::Recalled {
            worker: first_worker
        }
    );
    assert!(matches!(
        history[4].kind,
        TaskEventKind::Completed { worker, .. } if worker == second_worker
    ));
}

/// Stragglers (uniform 3–5× slowdown) stretch executions and sink
/// deadline hits; the Eq. (2) model still recalls doomed assignments
/// (its predictions track the *learned* slow profiles, so the recall
/// count itself is not monotone in the slowdown), and the whole chaotic
/// log must replay bit-identically from the same seed.
#[test]
fn straggler_slowdown_triggers_deadline_model_recalls() {
    let chaotic = |seed: u64| {
        let mut sc = Scenario::smoke(MatcherPolicy::React { cycles: 300 }, seed);
        sc.config.audit = true;
        sc.faults = Some(FaultPlan {
            straggler: Some(StragglerPlan {
                fraction: 1.0,
                factor_range: (3.0, 5.0),
            }),
            ..FaultPlan::none()
        });
        ScenarioRunner::new(sc).run()
    };
    let mut baseline = Scenario::smoke(MatcherPolicy::React { cycles: 300 }, 42);
    baseline.config.audit = true;
    let baseline = ScenarioRunner::new(baseline).run();
    let slow = chaotic(42);
    assert!(slow.reassignments > 0, "Eq. (2) must fire under slowdown");
    assert!(
        slow.avg_exec_time() > baseline.avg_exec_time(),
        "3–5× slowdown must show in executions: {:.1}s vs {:.1}s",
        slow.avg_exec_time(),
        baseline.avg_exec_time()
    );
    assert!(
        slow.met_deadline < baseline.met_deadline,
        "a uniformly slowed crowd must meet fewer deadlines: {} vs {}",
        slow.met_deadline,
        baseline.met_deadline
    );
    verify_lifecycles(slow.audit.as_ref().unwrap());
    // Exact-sequence determinism: the same seed replays the same log.
    let replay = chaotic(42);
    assert_eq!(
        slow.audit.as_ref().unwrap().events(),
        replay.audit.as_ref().unwrap().events(),
        "chaos audit logs must be bit-identical per seed"
    );
}

/// Completion-message loss: the worker finishes but the server never
/// hears of it; the timeout ladder recalls the silent assignment and the
/// retry lands. At least one task must show the golden
/// submitted→assigned→recalled→assigned→completed shape.
#[test]
fn completion_loss_is_recovered_by_the_timeout_ladder() {
    let run = |seed: u64| {
        let mut sc = Scenario::smoke(MatcherPolicy::React { cycles: 300 }, seed);
        sc.config.audit = true;
        sc.config.recovery = RecoveryConfig::aggressive(30.0);
        sc.faults = Some(FaultPlan {
            loss_probability: 0.25,
            ..FaultPlan::none()
        });
        ScenarioRunner::new(sc).run()
    };
    let r = run(42);
    assert!(r.faults.completions_lost > 0, "losses must fire at p=0.25");
    assert!(
        r.faults.timeout_recalls > 0,
        "the ladder must recall silent assignments: {:?}",
        r.faults
    );
    let log = r.audit.as_ref().unwrap();
    verify_lifecycles(log);
    // Find a task that was recalled (silent assignment) and then
    // completed on retry — the golden recovery shape.
    let recovered = (0..r.received)
        .map(|i| log.task_history(TaskId(i + 1)))
        .find(|h| kinds(h) == vec!["submitted", "assigned", "recalled", "assigned", "completed"]);
    assert!(
        recovered.is_some(),
        "expected at least one single-retry recovery among {} tasks",
        r.received
    );
    // Exact-sequence determinism for the full chaotic log.
    let replay = run(42);
    assert_eq!(log.events(), replay.audit.as_ref().unwrap().events());
}
