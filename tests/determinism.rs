//! Reproducibility: identical seeds give bit-identical experiment
//! results across the whole stack (kernel → middleware → harness).

use react::core::MatcherPolicy;
use react::crowd::{Scenario, ScenarioRunner};

#[test]
fn full_simulation_is_bit_reproducible() {
    let run = |seed| {
        ScenarioRunner::new(Scenario::smoke(MatcherPolicy::React { cycles: 300 }, seed)).run()
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a.received, b.received);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.met_deadline, b.met_deadline);
    assert_eq!(a.positive_feedback, b.positive_feedback);
    assert_eq!(a.reassignments, b.reassignments);
    assert_eq!(a.exec_times, b.exec_times);
    assert_eq!(a.total_times, b.total_times);
    assert_eq!(a.series_met.points(), b.series_met.points());
    assert_eq!(a.sim_duration, b.sim_duration);
}

#[test]
fn seeds_actually_matter() {
    let run = |seed| {
        ScenarioRunner::new(Scenario::smoke(MatcherPolicy::React { cycles: 300 }, seed)).run()
    };
    let a = run(1);
    let b = run(2);
    assert!(
        a.exec_times != b.exec_times || a.met_deadline != b.met_deadline,
        "different seeds should produce different runs"
    );
}

#[test]
fn policies_share_the_same_workload_per_seed() {
    // The arrival stream and crowd are derived from the scenario seed,
    // not from the policy, so comparisons are paired.
    let react = ScenarioRunner::new(Scenario::smoke(MatcherPolicy::React { cycles: 300 }, 5)).run();
    let trad = ScenarioRunner::new(Scenario::smoke(MatcherPolicy::Traditional, 5)).run();
    assert_eq!(react.received, trad.received);
    assert_eq!(react.sim_duration > 0.0, trad.sim_duration > 0.0);
}
