//! Observability integration: attaching any observer sink must never
//! perturb a simulation (write-only telemetry, bit-identical schedules)
//! while a recording sink must capture the full span/counter catalog of
//! a real end-to-end run.

use react::core::prelude::*;
use react::crowd::{Scenario, ScenarioRunner};
use react::obs::{CounterKind, HistogramKind, JsonLinesObserver, RecordingObserver, SpanKind};
use std::sync::Arc;

fn run_with(seed: u64, observer: Option<ObserverHandle>) -> react::crowd::RunReport {
    let scenario = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, seed);
    let mut runner = ScenarioRunner::new(scenario);
    if let Some(observer) = observer {
        runner = runner.with_observer(observer);
    }
    runner.run()
}

fn assert_reports_bit_identical(a: &react::crowd::RunReport, b: &react::crowd::RunReport) {
    assert_eq!(a.received, b.received);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.met_deadline, b.met_deadline);
    assert_eq!(a.positive_feedback, b.positive_feedback);
    assert_eq!(a.reassignments, b.reassignments);
    assert_eq!(a.expired_unassigned, b.expired_unassigned);
    assert_eq!(a.batches, b.batches);
    assert_eq!(
        a.total_matching_seconds.to_bits(),
        b.total_matching_seconds.to_bits()
    );
    assert_eq!(a.exec_times.len(), b.exec_times.len());
    for (x, y) in a.exec_times.iter().zip(&b.exec_times) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    for (x, y) in a.total_times.iter().zip(&b.total_times) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn observers_never_perturb_schedules_across_seeds() {
    for seed in [3u64, 17, 41] {
        let baseline = run_with(seed, None);
        let recording = RecordingObserver::new();
        let observed = run_with(seed, Some(Arc::new(recording)));
        assert_reports_bit_identical(&baseline, &observed);
    }
}

#[test]
fn recording_observer_captures_the_full_catalog() {
    let recording = RecordingObserver::new();
    let report = run_with(7, Some(Arc::new(recording.clone())));

    // Every tick stage produced spans with monotonic durations.
    for kind in [
        SpanKind::Tick,
        SpanKind::StageExpire,
        SpanKind::StageRecall,
        SpanKind::StageBuild,
        SpanKind::StageMatch,
        SpanKind::StageCommit,
    ] {
        let stats = recording
            .span_stats(kind)
            .unwrap_or_else(|| panic!("missing span {}", kind.name()));
        assert!(stats.count > 0, "{} never fired", kind.name());
        assert!(stats.total_seconds >= 0.0);
        assert!(stats.max_seconds >= stats.min_seconds);
    }

    // Matcher cycle/flip accounting flowed through the engine.
    let cycles = recording.counter(CounterKind::MatcherCycles);
    let accepted = recording.counter(CounterKind::FlipsAccepted);
    let rejected = recording.counter(CounterKind::FlipsRejected);
    assert!(cycles > 0, "matcher ran no cycles");
    assert_eq!(
        accepted + rejected,
        cycles,
        "every REACT cycle is an accepted or rejected flip"
    );

    // Counters reconcile with the run report.
    assert_eq!(
        recording.counter(CounterKind::Reassignments),
        report.reassignments,
        "dynamic-reassignment decisions must be counted"
    );
    assert_eq!(recording.counter(CounterKind::BatchesRun), report.batches);
    assert_eq!(
        recording.counter(CounterKind::TasksCompleted),
        report.completed
    );
    assert_eq!(
        recording.counter(CounterKind::DeadlinesMet),
        report.met_deadline
    );

    // Latency histograms observed every completion.
    let exec = recording
        .histogram(HistogramKind::ExecSeconds)
        .expect("exec.seconds histogram");
    assert_eq!(exec.count(), report.completed);
}

#[test]
fn json_lines_exporter_streams_well_formed_events() {
    let (json, buffer) = JsonLinesObserver::shared_buffer();
    let _ = run_with(5, Some(Arc::new(json)));
    let bytes = buffer.lock().clone();
    let text = String::from_utf8(bytes).expect("exporter writes UTF-8");
    assert!(!text.is_empty());
    let mut saw_span = false;
    let mut saw_counter = false;
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        saw_span |= line.contains("\"event\":\"span\"");
        saw_counter |= line.contains("\"event\":\"counter\"");
    }
    assert!(saw_span, "no span events exported");
    assert!(saw_counter, "no counter events exported");
    assert!(text.contains("\"name\":\"tick.match\""));
    assert!(text.contains("\"name\":\"matcher.cycles\""));
}
