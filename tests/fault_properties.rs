//! Property-based tests over arbitrary fault plans (proptest).
//!
//! Three invariants the fault layer must hold for *every* plan, not just
//! the hand-picked golden scenarios:
//!
//! 1. the same seed yields bit-identical serial and parallel
//!    multi-region runs, faults included;
//! 2. completion-message duplication never double-completes a task;
//! 3. no task is ever silently lost — every received task is completed,
//!    expired, or accounted as stranded, and the audit lifecycles stay
//!    well-formed, even when workers drop out mid-task.

use proptest::prelude::*;
use react::core::{verify_lifecycles, MatcherPolicy, RecoveryConfig, TaskEventKind};
use react::crowd::{MultiRegionRunner, MultiRegionScenario, RunReport, Scenario, ScenarioRunner};
use react::faults::{BurstPlan, DropoutPlan, FaultPlan, StragglerPlan};
use std::collections::HashMap;

/// Strategy: an arbitrary well-formed [`FaultPlan`] mixing every fault
/// kind at bounded rates.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::option::of((0.0f64..=1.0, 5.0f64..40.0, 10.0f64..30.0)),
        proptest::option::of((0.0f64..=1.0, 1.6f64..4.0)),
        0.0f64..0.4,
        0.0f64..0.4,
        0.0f64..0.6,
        proptest::option::of((1u32..3, 1u32..8)),
    )
        .prop_map(|(dropout, straggler, abandon, loss, dup, bursts)| {
            let plan = FaultPlan {
                dropout: dropout.map(|(probability, start, span)| DropoutPlan {
                    probability,
                    window: (start, start + span),
                    offline_range: Some((10.0, 40.0)),
                }),
                straggler: straggler.map(|(fraction, hi)| StragglerPlan {
                    fraction,
                    factor_range: (1.5, hi),
                }),
                abandon_probability: abandon,
                loss_probability: loss,
                duplication_probability: dup,
                bursts: bursts.map(|(count, size)| BurstPlan {
                    count,
                    size,
                    window: (10.0, 50.0),
                }),
            };
            plan.validate().expect("strategy emits only valid plans");
            plan
        })
}

/// The conservation identity every chaotic run must satisfy: nothing the
/// middleware received may vanish.
fn assert_conserved(r: &RunReport) {
    assert_eq!(
        r.completed + r.expired_unassigned + r.faults.stranded,
        r.received,
        "task conservation violated: {:?}",
        r.faults
    );
}

proptest! {
    // Every case is a full end-to-end simulation; keep the counts small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed ⇒ bit-identical serial vs parallel multi-region runs,
    /// whatever faults are injected.
    #[test]
    fn serial_and_parallel_chaos_runs_are_bit_identical(
        plan in arb_plan(), seed in 0u64..1000
    ) {
        let mut global = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, seed);
        global.n_workers = 40;
        global.total_tasks = 80;
        global.config.recovery = RecoveryConfig::aggressive(30.0);
        global.faults = Some(plan);
        let runner = MultiRegionRunner::new(MultiRegionScenario {
            global,
            rows: 2,
            cols: 2,
        });
        let serial = runner.run_serial();
        let parallel = runner.run_parallel();
        prop_assert!(
            serial.identical(&parallel),
            "fault injection must not break region-parallel determinism"
        );
        for (_, r) in &serial.per_region {
            assert_conserved(r);
        }
    }

    /// Completion-message duplication never double-completes a task: the
    /// audit log shows at most one `Completed` event per task, and every
    /// injected duplicate was rejected by the server.
    #[test]
    fn duplication_never_double_completes(
        dup in 0.5f64..=1.0, seed in 0u64..1000
    ) {
        let mut sc = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, seed);
        sc.config.audit = true;
        sc.faults = Some(FaultPlan {
            duplication_probability: dup,
            ..FaultPlan::none()
        });
        let r = ScenarioRunner::new(sc).run();
        prop_assert_eq!(
            r.faults.duplicates_rejected, r.faults.completions_duplicated,
            "every injected duplicate must bounce off the server"
        );
        let log = r.audit.as_ref().unwrap();
        verify_lifecycles(log);
        let mut completions: HashMap<_, u32> = HashMap::new();
        for e in log.events() {
            if matches!(e.kind, TaskEventKind::Completed { .. }) {
                *completions.entry(e.task).or_default() += 1;
            }
        }
        for (task, n) in completions {
            prop_assert_eq!(n, 1, "task {:?} completed {} times", task, n);
        }
    }

    /// Dropped workers never silently swallow tasks: with the recovery
    /// ladder on, every in-flight task of a dropped worker is reassigned
    /// or expired, and the audit lifecycles stay well-formed.
    #[test]
    fn dropouts_never_lose_tasks(
        probability in 0.5f64..=1.0, seed in 0u64..1000
    ) {
        let mut sc = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, seed);
        sc.config.audit = true;
        sc.config.recovery = RecoveryConfig::aggressive(30.0);
        sc.faults = Some(FaultPlan {
            dropout: Some(DropoutPlan {
                probability,
                window: (5.0, 60.0),
                offline_range: Some((20.0, 60.0)),
            }),
            ..FaultPlan::none()
        });
        let r = ScenarioRunner::new(sc).run();
        prop_assert!(r.faults.dropouts > 0, "dropouts must fire at p >= 0.5");
        assert_conserved(&r);
        verify_lifecycles(r.audit.as_ref().unwrap());
    }
}
