//! Restart resilience: a middleware restart must not reset worker
//! profiles to "in training". Drives a server, checkpoints its Profiling
//! Component, restores it into a fresh server and verifies behaviour
//! carries over.

use react::core::prelude::*;
use react::core::{export_profiles, import_profiles};
use react::matching::CostModel;
use react::prob::EstimatorConfig;

fn here() -> GeoPoint {
    GeoPoint::new(37.98, 23.72)
}

fn task(id: u64, deadline: f64) -> Task {
    Task::new(TaskId(id), here(), deadline, 0.05, TaskCategory(0), "t")
}

fn eager_config() -> Config {
    let mut config = Config::paper_defaults();
    config.batch = BatchTrigger {
        min_unassigned: 1,
        period: None,
    };
    config
}

/// Runs a warm-up session: two workers complete enough tasks to build
/// profiles (fast worker 1, slow worker 2).
fn warmed_up_server() -> ReactServer {
    let mut server = ServerBuilder::new(eager_config())
        .seed(1)
        .cost_model(CostModel::free())
        .build()
        .expect("valid config");
    server.register_worker(WorkerId(1), here());
    let mut now = 0.0;
    // Worker 1: 4 fast completions with positive feedback.
    for i in 0..4 {
        server.submit_task(task(i, 60.0), now);
        server.tick(now);
        server
            .complete_task(TaskId(i), WorkerId(1), now + 2.0, true)
            .unwrap();
        now += 5.0;
    }
    // Worker 2: 4 slow completions, mixed feedback.
    server.register_worker(WorkerId(2), here());
    server.worker_offline(WorkerId(1), now);
    for i in 10..14 {
        server.submit_task(task(i, 120.0), now);
        server.tick(now);
        server
            .complete_task(TaskId(i), WorkerId(2), now + 60.0, i % 2 == 0)
            .unwrap();
        now += 70.0;
    }
    server.worker_online(WorkerId(1)).unwrap();
    server
}

#[test]
fn restored_profiles_preserve_training_and_accuracy() {
    let old = warmed_up_server();
    let checkpoint = export_profiles(old.profiling());

    // "Restart": fresh server, profiles imported.
    let restored = import_profiles(&checkpoint, EstimatorConfig::default()).unwrap();
    assert_eq!(restored.len(), 2);
    for id in [WorkerId(1), WorkerId(2)] {
        let before = old.profiling().profile(id).unwrap();
        let after = restored.profile(id).unwrap();
        assert_eq!(after.assignments_served(), before.assignments_served());
        assert_eq!(
            after.accuracy(TaskCategory(0)),
            before.accuracy(TaskCategory(0))
        );
        assert_eq!(after.exec_samples(), before.exec_samples());
        assert!(after.is_profiled(), "{id} must stay out of training");
    }
}

#[test]
fn restored_server_still_recalls_stalls() {
    // The restored profile must drive Eq. (2) recalls exactly as the
    // original would: worker 1's ≤2 s history makes a 40 s stall
    // hopeless.
    let old = warmed_up_server();
    let checkpoint = export_profiles(old.profiling());
    let profiling = import_profiles(&checkpoint, EstimatorConfig::default()).unwrap();

    // Exercise the end-to-end path: a fresh server whose workers replay
    // the checkpointed execution history through the normal completion
    // API (the component-level exact restore is covered above).
    let mut server = ServerBuilder::new(eager_config())
        .seed(2)
        .cost_model(CostModel::free())
        .build()
        .expect("valid config");
    for p in profiling.iter() {
        server.register_worker(p.id(), p.location());
    }
    // Replay worker 1's history so its profile is warm again.
    let fast = profiling.profile(WorkerId(1)).unwrap();
    let mut now = 0.0;
    for (i, &t) in fast.exec_samples().iter().enumerate() {
        server.worker_offline(WorkerId(2), now);
        server.submit_task(task(100 + i as u64, 60.0), now);
        server.tick(now);
        server
            .complete_task(TaskId(100 + i as u64), WorkerId(1), now + t, true)
            .unwrap();
        server.worker_online(WorkerId(2)).unwrap();
        now += t + 1.0;
    }
    // Fresh task lands on worker 1 (higher accuracy); it stalls.
    server.worker_offline(WorkerId(2), now);
    server.submit_task(task(500, 90.0), now);
    let out = server.tick(now);
    assert_eq!(out.assignments.len(), 1);
    let mut recalled = false;
    for step in 1..=60 {
        let out = server.tick(now + step as f64);
        if !out.recalls.is_empty() {
            recalled = true;
            break;
        }
    }
    assert!(recalled, "restored-profile server must recall the stall");
}

#[test]
fn checkpoint_is_stable_across_restarts() {
    let old = warmed_up_server();
    let once = export_profiles(old.profiling());
    let twice = export_profiles(&import_profiles(&once, EstimatorConfig::default()).unwrap());
    assert_eq!(once, twice, "export∘import must be idempotent");
}
