//! Property-based tests over the probability substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use react::prob::{
    DeadlineModel, DeadlineModelConfig, EstimatorConfig, ExecTimeEstimator, FitMethod, PowerLaw,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ccdf_is_monotone_nonincreasing(
        alpha in 1.01f64..8.0,
        k_min in 0.1f64..100.0,
        a in 0.0f64..1e4,
        b in 0.0f64..1e4,
    ) {
        let pl = PowerLaw::new(alpha, k_min).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(pl.ccdf(lo) + 1e-12 >= pl.ccdf(hi));
        prop_assert!((0.0..=1.0).contains(&pl.ccdf(a)));
    }

    #[test]
    fn cdf_quantile_roundtrip(alpha in 1.05f64..6.0, k_min in 0.5f64..50.0, q in 0.0f64..0.999) {
        let pl = PowerLaw::new(alpha, k_min).unwrap();
        let k = pl.quantile(q);
        prop_assert!(k >= k_min);
        prop_assert!((pl.cdf(k) - q).abs() < 1e-6);
    }

    #[test]
    fn samples_respect_support_and_fit_recovers(
        alpha in 1.5f64..4.0,
        k_min in 1.0f64..20.0,
        seed in 0u64..50,
    ) {
        let pl = PowerLaw::new(alpha, k_min).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let samples = pl.sample_n(&mut rng, 4000);
        prop_assert!(samples.iter().all(|&s| s >= k_min));
        let fitted = PowerLaw::fit(&samples, k_min, FitMethod::Continuous).unwrap();
        // Generous statistical tolerance at n = 4000.
        prop_assert!((fitted.alpha() - alpha).abs() < 0.35,
            "α {} fitted as {}", alpha, fitted.alpha());
    }

    #[test]
    fn eq2_probability_is_valid_and_bounded_by_eq3(
        alpha in 1.1f64..5.0,
        k_min in 0.5f64..30.0,
        elapsed in 0.0f64..200.0,
        extra in 0.1f64..200.0,
    ) {
        let pl = PowerLaw::new(alpha, k_min).unwrap();
        let model = DeadlineModel::new(DeadlineModelConfig::default());
        let ttd = elapsed + extra;
        let p_window = model.pr_complete_in_window(&pl, elapsed, ttd);
        let p_total = model.pr_complete_before(&pl, ttd);
        prop_assert!((0.0..=1.0).contains(&p_window));
        // The window probability can never exceed the total probability
        // of finishing before the deadline… plus the mass below k_min
        // (when elapsed < k_min the two coincide).
        prop_assert!(p_window <= 1.0);
        if elapsed <= k_min {
            prop_assert!((p_window - p_total).abs() < 1e-9);
        }
    }

    #[test]
    fn eq2_monotone_in_elapsed(
        alpha in 1.1f64..5.0,
        k_min in 0.5f64..30.0,
        ttd in 1.0f64..300.0,
        e1 in 0.0f64..300.0,
        e2 in 0.0f64..300.0,
    ) {
        let pl = PowerLaw::new(alpha, k_min).unwrap();
        let model = DeadlineModel::new(DeadlineModelConfig::default());
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        prop_assert!(
            model.pr_complete_in_window(&pl, lo, ttd) + 1e-12
                >= model.pr_complete_in_window(&pl, hi, ttd)
        );
    }

    #[test]
    fn estimator_kmin_is_smallest_retained_sample(
        samples in proptest::collection::vec(0.01f64..1000.0, 1..50),
        window in proptest::option::of(1usize..20),
    ) {
        let mut est = ExecTimeEstimator::new(EstimatorConfig {
            min_samples: 1,
            window,
            fit_method: FitMethod::Paper,
        });
        for &s in &samples {
            est.observe(s);
        }
        let retained: Vec<f64> = match window {
            Some(w) if samples.len() > w => samples[samples.len() - w..].to_vec(),
            _ => samples.clone(),
        };
        let expect = retained.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(est.k_min(), Some(expect));
        // The fitted model (if any) uses that k_min.
        if let Some(m) = est.model() {
            prop_assert_eq!(m.k_min(), expect);
        }
    }
}
