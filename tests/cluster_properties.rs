//! Property-based tests over the cluster layer (proptest).
//!
//! The invariants the sharded mode must hold for *every* policy and
//! fault plan, not just the golden scenarios:
//!
//! 1. **conservation** — no task is lost or duplicated across handoffs,
//!    rebalances, admission sheds and faults: completed + expired +
//!    admission-shed + stranded == received, handoffs-out == handoffs-in,
//!    and the worker population is conserved across rebalances;
//! 2. **determinism** — serial and parallel shard execution produce
//!    bit-identical reports under any policy/fault combination;
//! 3. **auditability** — every shard's lifecycle log stays well-formed
//!    (`Submitted … HandedOff` / fresh `Submitted` on the receiving
//!    shard), including tasks that bounce between shards.

use proptest::prelude::*;
use react::cluster::{
    AdmissionPolicy, ClusterPolicy, ClusterRunner, ClusterScenario, HandoffPolicy, RebalancePolicy,
};
use react::core::{verify_lifecycles, MatcherPolicy, TaskEventKind};
use react::crowd::Scenario;
use react::faults::{DropoutPlan, FaultPlan};

/// Strategy: an arbitrary cluster policy mixing the three mechanisms.
fn arb_policy() -> impl Strategy<Value = ClusterPolicy> {
    (
        proptest::option::of((1usize..10, 1usize..12)),
        proptest::option::of((1u64..6, 0usize..4, 1usize..6)),
        proptest::option::of(4usize..60),
    )
        .prop_map(|(handoff, rebalance, admission)| ClusterPolicy {
            split_threshold: u64::MAX,
            handoff: handoff.map(|(pool_floor, max_per_tick)| HandoffPolicy {
                pool_floor,
                max_per_tick,
            }),
            rebalance: rebalance.map(|(period_ticks, min_idle, max_moves)| RebalancePolicy {
                period_ticks,
                min_idle,
                max_moves,
            }),
            admission: admission.map(|max_open_tasks| AdmissionPolicy { max_open_tasks }),
        })
}

/// Strategy: an optional dropout-heavy fault plan (the fault kind that
/// exercises handoff hardest — pools collapse and queues must move).
fn arb_faults() -> impl Strategy<Value = Option<FaultPlan>> {
    proptest::option::of((0.0f64..=0.8, any::<bool>())).prop_map(|spec| {
        spec.map(|(probability, rejoin)| FaultPlan {
            dropout: Some(DropoutPlan {
                probability,
                window: (1.0, 25.0),
                offline_range: rejoin.then_some((10.0, 40.0)),
            }),
            ..FaultPlan::none()
        })
    })
}

fn scenario(
    seed: u64,
    rows: u32,
    cols: u32,
    policy: ClusterPolicy,
    faults: Option<FaultPlan>,
) -> ClusterScenario {
    let mut global = Scenario::smoke(MatcherPolicy::React { cycles: 100 }, seed);
    global.n_workers = 40;
    global.arrival_rate = 4.0;
    global.total_tasks = 120;
    global.drain_horizon = 150.0;
    global.config.audit = true;
    global.faults = faults;
    ClusterScenario {
        global,
        rows,
        cols,
        policy,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariant 1: conservation under arbitrary policies and faults.
    #[test]
    fn no_task_is_lost_or_duplicated(
        seed in 0u64..1_000,
        rows in 1u32..3,
        cols in 1u32..3,
        policy in arb_policy(),
        faults in arb_faults(),
    ) {
        let r = ClusterRunner::new(scenario(seed, rows, cols, policy, faults)).run_serial();
        prop_assert_eq!(r.received, 120);
        prop_assert_eq!(r.unroutable, 0);
        prop_assert!(r.conserved(), "conservation violated: {:?}", r);
        let workers: usize = r.shards.iter().map(|s| s.workers_final).sum();
        prop_assert_eq!(workers, 40, "worker population not conserved");
    }

    /// Invariant 2: serial and parallel shard execution are
    /// bit-identical whatever the policy and fault plan.
    #[test]
    fn serial_and_parallel_shard_execution_bit_identical(
        seed in 0u64..1_000,
        policy in arb_policy(),
        faults in arb_faults(),
    ) {
        let runner = ClusterRunner::new(scenario(seed, 2, 2, policy, faults));
        let serial = runner.run_serial();
        let parallel = runner.run_parallel();
        prop_assert!(serial.identical(&parallel), "serial/parallel divergence");
    }

    /// Invariant 3: every shard's audit log verifies, and handoff
    /// events balance across the logs (each HandedOff is matched by a
    /// fresh Submitted on some shard).
    #[test]
    fn audit_lifecycles_stay_well_formed_across_handoffs(
        seed in 0u64..1_000,
        policy in arb_policy(),
        faults in arb_faults(),
    ) {
        let r = ClusterRunner::new(scenario(seed, 2, 2, policy, faults)).run_serial();
        let mut handed_off = 0u64;
        for shard in &r.shards {
            let log = shard.audit.as_ref().expect("audit enabled");
            verify_lifecycles(log);
            handed_off += log
                .events()
                .iter()
                .filter(|e| matches!(e.kind, TaskEventKind::HandedOff))
                .count() as u64;
        }
        prop_assert_eq!(
            handed_off,
            r.handoffs(),
            "audited handoffs must match the cluster counters"
        );
    }
}
