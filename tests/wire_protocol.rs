//! Golden wire-protocol tests for the ingest front-end.
//!
//! Everything here talks to a live [`react::runtime::IngestRuntime`]
//! through a raw `TcpStream` — no client helper from `react-load` — so
//! the bytes on the wire are exactly what an external requester would
//! send. Covers: framing round-trips, every malformed-input status
//! (400/404/405/413/431/501) without a panic, persistent-connection
//! reuse, `Connection: close`, truncated requests, and clean shutdown.

use react::runtime::{IngestConfig, IngestHandle, IngestRuntime};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response off the wire.
#[derive(Debug)]
struct WireResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl WireResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one `Content-Length`-framed response. `None` = the server
/// closed the connection before a status line.
fn read_response(reader: &mut BufReader<TcpStream>) -> Option<WireResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).ok()? == 0 {
        return None;
    }
    let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':')?;
        let (name, value) = (name.trim().to_string(), value.trim().to_string());
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().ok()?;
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some(WireResponse {
        status,
        headers,
        body: String::from_utf8(body).ok()?,
    })
}

/// Opens a connection to the running stack.
fn connect(handle: &IngestHandle) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

/// Writes raw bytes and reads one response on a fresh connection.
fn roundtrip(handle: &IngestHandle, raw: &[u8]) -> Option<WireResponse> {
    let (mut stream, mut reader) = connect(handle);
    stream.write_all(raw).expect("write request");
    stream.flush().expect("flush");
    read_response(&mut reader)
}

/// A small fast stack for wire tests: no traffic shaping needed, so a
/// tiny fleet and a high time compression keep each test sub-second.
fn quick_stack() -> IngestHandle {
    let config = IngestConfig {
        n_workers: 4,
        time_scale: 600.0,
        tick_interval: 2.0,
        seed: 33,
        acceptors: 2,
        ..IngestConfig::default()
    };
    IngestRuntime::new(config).start().expect("start stack")
}

#[test]
fn submit_and_poll_round_trip_on_the_wire() {
    let handle = quick_stack();
    let body = "{\"deadline\":90.0,\"reward\":0.05}";
    let response = roundtrip(
        &handle,
        format!(
            "POST /tasks HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .expect("a well-framed submit gets a response");
    assert_eq!(response.status, 202);
    assert!(
        response.body.contains("\"state\":\"queued\""),
        "{}",
        response.body
    );
    assert_eq!(
        response.header("content-type"),
        Some("application/json"),
        "every response is JSON-typed"
    );
    assert_eq!(
        response.header("content-length"),
        Some(response.body.len().to_string().as_str()),
        "advertised and actual body length must agree"
    );

    // The 202 body names the task id; poll it back.
    let id: u64 = response
        .body
        .split("\"task\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|digits| digits.parse().ok())
        .expect("202 body carries the task id");
    let poll = roundtrip(
        &handle,
        format!("GET /tasks/{id} HTTP/1.1\r\n\r\n").as_bytes(),
    )
    .expect("poll gets a response");
    assert_eq!(poll.status, 200);
    assert!(
        ["queued", "assigned", "completed", "expired", "shed"]
            .iter()
            .any(|state| poll.body.contains(&format!("\"state\":\"{state}\""))),
        "poll must report a wire-named state: {}",
        poll.body
    );

    let report = handle.shutdown();
    assert!(report.conserved(), "conservation: {report:?}");
}

#[test]
fn malformed_inputs_map_to_their_status_codes_without_panicking() {
    let handle = quick_stack();

    // Gibberish request line → 400, connection closed.
    let r = roundtrip(&handle, b"NOT-HTTP\r\n\r\n").expect("400 response");
    assert_eq!(r.status, 400);
    assert_eq!(r.header("connection"), Some("close"));

    // Bad JSON body on a well-framed request → 400, connection kept.
    let r = roundtrip(
        &handle,
        b"POST /tasks HTTP/1.1\r\ncontent-length: 4\r\n\r\n{{{{",
    )
    .expect("400 response");
    assert_eq!(r.status, 400);

    // Unknown path → 404; unknown method → 405.
    let r = roundtrip(&handle, b"GET /nope HTTP/1.1\r\n\r\n").expect("404 response");
    assert_eq!(r.status, 404);
    let r = roundtrip(&handle, b"PATCH /tasks HTTP/1.1\r\n\r\n").expect("405 response");
    assert_eq!(r.status, 405);

    // Declared body over the cap → 413 before any body byte is read.
    let r = roundtrip(
        &handle,
        b"POST /tasks HTTP/1.1\r\ncontent-length: 999999\r\n\r\n",
    )
    .expect("413 response");
    assert_eq!(r.status, 413);

    // Header block over the cap → 431.
    let huge = format!(
        "GET /report HTTP/1.1\r\nx-filler: {}\r\n\r\n",
        "y".repeat(10_000)
    );
    let r = roundtrip(&handle, huge.as_bytes()).expect("431 response");
    assert_eq!(r.status, 431);

    // Chunked transfer coding is outside the subset → 501.
    let r = roundtrip(
        &handle,
        b"POST /tasks HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
    )
    .expect("501 response");
    assert_eq!(r.status, 501);

    // The stack survived all of it and still serves well-formed requests.
    let r = roundtrip(&handle, b"GET /report HTTP/1.1\r\n\r\n").expect("report after abuse");
    assert_eq!(r.status, 200);
    let report = handle.shutdown();
    assert!(report.rejected >= 6, "all six rejects counted: {report:?}");
    assert!(report.conserved(), "conservation: {report:?}");
}

#[test]
fn truncated_requests_close_the_connection_cleanly() {
    let handle = quick_stack();

    // Stream ends mid-request-line: no response, just a close.
    let (mut stream, mut reader) = connect(&handle);
    stream.write_all(b"POST /ta").expect("partial write");
    drop(stream); // half-close: the server sees EOF mid-line
    assert!(
        read_response(&mut reader).is_none(),
        "a truncated request gets no response"
    );

    // Declared body longer than what arrives: the read times out,
    // surfaces as Truncated, no response, no panic.
    let (mut stream, mut reader) = connect(&handle);
    stream
        .write_all(b"POST /tasks HTTP/1.1\r\ncontent-length: 64\r\n\r\nshort")
        .expect("write");
    drop(stream);
    assert!(
        read_response(&mut reader).is_none(),
        "a short body gets no response"
    );

    // The acceptors survived both.
    let r = roundtrip(&handle, b"GET /report HTTP/1.1\r\n\r\n").expect("report after truncation");
    assert_eq!(r.status, 200);
    let report = handle.shutdown();
    assert!(report.conserved(), "conservation: {report:?}");
}

#[test]
fn persistent_connections_serve_many_requests_and_honor_close() {
    let handle = quick_stack();
    let (mut stream, mut reader) = connect(&handle);

    // Several requests pipelined over one connection.
    for i in 0..5u32 {
        let body = format!("{{\"reward\":0.0{}}}", i + 1);
        stream
            .write_all(
                format!(
                    "POST /tasks HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .expect("write");
        let r = read_response(&mut reader).expect("keep-alive response");
        assert_eq!(r.status, 202);
        assert_eq!(r.header("connection"), Some("keep-alive"));
    }

    // `Connection: close` is honoured: one response, then EOF.
    stream
        .write_all(b"GET /report HTTP/1.1\r\nconnection: close\r\n\r\n")
        .expect("write");
    let r = read_response(&mut reader).expect("final response");
    assert_eq!(r.status, 200);
    assert!(
        read_response(&mut reader).is_none(),
        "server must close after Connection: close"
    );

    let report = handle.shutdown();
    assert_eq!(report.offered, 5, "five submissions on one connection");
    assert_eq!(
        report.connections, 1,
        "keep-alive reuse means a single accepted connection"
    );
    assert!(report.conserved(), "conservation: {report:?}");
}

#[test]
fn shutdown_is_clean_and_drains_to_a_conserved_report() {
    let handle = quick_stack();
    for _ in 0..8 {
        let r = roundtrip(
            &handle,
            b"POST /tasks HTTP/1.1\r\ncontent-length: 0\r\n\r\n",
        )
        .expect("submit");
        assert_eq!(r.status, 202);
    }
    let addr = handle.local_addr();
    let report = handle.shutdown();
    assert_eq!(report.accepted, 8);
    assert!(
        report.conserved(),
        "drained report conserves tasks: {report:?}"
    );
    assert_eq!(report.stranded, 0, "a graceful drain strands nothing");

    // After shutdown the port no longer serves: a fresh connection is
    // either refused outright or closed without a response.
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.write_all(b"GET /report HTTP/1.1\r\n\r\n");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        assert!(
            read_response(&mut reader).is_none(),
            "no acceptor may serve after shutdown"
        );
    }
}
