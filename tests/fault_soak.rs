//! Long-horizon chaos soak: a heavy [`FaultPlan::chaos`] mix over 200+
//! simulated ticks for each paper policy, with the recovery ladder and
//! audit log on. Ignored by default; run it explicitly with
//!
//! ```text
//! cargo test --features debug-invariants --test fault_soak -- --ignored
//! ```
//!
//! so the `MatchingValidator` hooks check every matching the run
//! produces. The soak asserts no panic, task conservation, well-formed
//! audit lifecycles, and bit-identical replay per seed.

use react::core::{verify_lifecycles, MatcherPolicy, RecoveryConfig};
use react::crowd::{RunReport, Scenario, ScenarioRunner};
use react::faults::FaultPlan;

fn soak(policy: MatcherPolicy, seed: u64) -> RunReport {
    let mut sc = Scenario::smoke(policy, seed);
    sc.label = format!("soak-{}", sc.config.matcher.name());
    sc.n_workers = 120;
    sc.arrival_rate = 4.0;
    sc.total_tasks = 800;
    sc.drain_horizon = 400.0;
    sc.config.audit = true;
    sc.config.recovery = RecoveryConfig::aggressive(40.0);
    sc.faults = Some(FaultPlan::chaos(0.8));
    ScenarioRunner::new(sc).run()
}

#[test]
#[ignore = "long soak; run with --ignored (ideally under --features debug-invariants)"]
fn chaos_soak_holds_every_invariant_for_every_policy() {
    for policy in [
        MatcherPolicy::React { cycles: 1000 },
        MatcherPolicy::Greedy,
        MatcherPolicy::Traditional,
    ] {
        let r = soak(policy, 4242);
        assert!(
            r.sim_duration >= 200.0,
            "{}: the soak must cover 200+ ticks, ran {:.0}s",
            r.matcher_name,
            r.sim_duration
        );
        assert!(
            r.faults.dropouts > 0
                && r.faults.abandons > 0
                && r.faults.completions_lost > 0
                && r.faults.burst_tasks > 0,
            "{}: chaos(0.8) must inject every fault kind: {:?}",
            r.matcher_name,
            r.faults
        );
        assert_eq!(
            r.completed + r.expired_unassigned + r.faults.stranded,
            r.received,
            "{}: task conservation violated: {:?}",
            r.matcher_name,
            r.faults
        );
        assert!(r.met_deadline > 0, "{}: nothing finished", r.matcher_name);
        verify_lifecycles(r.audit.as_ref().unwrap());

        // The whole 200-tick chaotic history replays bit-identically.
        let replay = soak(policy, 4242);
        assert_eq!(
            r.audit.as_ref().unwrap().events(),
            replay.audit.as_ref().unwrap().events(),
            "{}: soak must be deterministic per seed",
            r.matcher_name
        );
    }
}
