//! Property-based tests over the matching substrate (proptest).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use react::matching::{
    AuctionMatcher, BipartiteGraph, GreedyMatcher, HopcroftKarpMatcher, HungarianMatcher, Matcher,
    MetropolisMatcher, ReactMatcher, TaskIdx, WorkerIdx,
};

/// Strategy: a random sparse bipartite graph with up to 8×8 vertices.
fn arb_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1usize..8, 1usize..8).prop_flat_map(|(nu, nv)| {
        proptest::collection::vec((0..nu as u32, 0..nv as u32, 0.0f64..1.0), 0..=nu * nv).prop_map(
            move |edges| {
                let mut g = BipartiteGraph::new(nu, nv);
                for (u, v, w) in edges {
                    // Duplicate insertions are rejected; ignore them.
                    let _ = g.add_edge(WorkerIdx(u), TaskIdx(v), w);
                }
                g
            },
        )
    })
}

/// Exhaustive optimum for tiny graphs.
fn brute_force(graph: &BipartiteGraph) -> f64 {
    fn rec(graph: &BipartiteGraph, task: usize, used: &mut Vec<bool>) -> f64 {
        if task == graph.n_tasks() {
            return 0.0;
        }
        let mut best = rec(graph, task + 1, used);
        for &e in graph.task_edges(TaskIdx(task as u32)) {
            let edge = graph.edge(e);
            if !used[edge.worker.0 as usize] {
                used[edge.worker.0 as usize] = true;
                best = best.max(edge.weight + rec(graph, task + 1, used));
                used[edge.worker.0 as usize] = false;
            }
        }
        best
    }
    rec(graph, 0, &mut vec![false; graph.n_workers()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_matchers_return_valid_matchings(graph in arb_graph(), seed in 0u64..1000) {
        let matchers: Vec<Box<dyn Matcher>> = vec![
            Box::new(ReactMatcher::with_cycles(300)),
            Box::new(MetropolisMatcher::with_cycles(300)),
            Box::new(GreedyMatcher),
            Box::new(HungarianMatcher),
            Box::new(AuctionMatcher::default()),
            Box::new(HopcroftKarpMatcher),
        ];
        for matcher in matchers {
            let m = matcher.assign(&graph, &mut SmallRng::seed_from_u64(seed));
            m.verify(&graph); // 1-to-1 constraints + real edges + weight sum
            prop_assert!(m.total_weight >= -1e-12);
            prop_assert!(m.len() <= graph.max_matching_size());
        }
    }

    #[test]
    fn hungarian_is_exactly_optimal(graph in arb_graph()) {
        let m = HungarianMatcher.assign(&graph, &mut SmallRng::seed_from_u64(0));
        let opt = brute_force(&graph);
        prop_assert!((m.total_weight - opt).abs() < 1e-9,
            "hungarian {} vs brute force {}", m.total_weight, opt);
    }

    #[test]
    fn no_heuristic_beats_the_optimum(graph in arb_graph(), seed in 0u64..1000) {
        let opt = HungarianMatcher
            .assign(&graph, &mut SmallRng::seed_from_u64(0))
            .total_weight;
        for m in [
            ReactMatcher::with_cycles(500).assign(&graph, &mut SmallRng::seed_from_u64(seed)),
            MetropolisMatcher::with_cycles(500).assign(&graph, &mut SmallRng::seed_from_u64(seed)),
            GreedyMatcher.assign(&graph, &mut SmallRng::seed_from_u64(seed)),
            AuctionMatcher::default().assign(&graph, &mut SmallRng::seed_from_u64(seed)),
        ] {
            prop_assert!(m.total_weight <= opt + 1e-9,
                "{} exceeded the optimum {}", m.total_weight, opt);
        }
    }

    #[test]
    fn hopcroft_karp_cardinality_is_maximal(graph in arb_graph()) {
        // On unit weights the exact weighted solver's matching size is
        // the maximum cardinality; HK must achieve it on the original
        // weights too (cardinality does not depend on weights).
        let mut unit = BipartiteGraph::new(graph.n_workers(), graph.n_tasks());
        for e in graph.edges() {
            unit.add_edge(e.worker, e.task, 1.0).unwrap();
        }
        let hk = HopcroftKarpMatcher.assign(&graph, &mut SmallRng::seed_from_u64(0));
        let max_card = HungarianMatcher
            .assign(&unit, &mut SmallRng::seed_from_u64(0))
            .len();
        prop_assert_eq!(hk.len(), max_card);
    }

    #[test]
    fn auction_is_within_epsilon_bound(graph in arb_graph()) {
        let auction = AuctionMatcher { epsilon: 1e-4 };
        let m = auction.assign(&graph, &mut SmallRng::seed_from_u64(1));
        let opt = HungarianMatcher
            .assign(&graph, &mut SmallRng::seed_from_u64(0))
            .total_weight;
        // Classic auction guarantee: within |V|·ε of optimal.
        let slack = graph.n_tasks() as f64 * 1e-4 + 1e-9;
        prop_assert!(m.total_weight >= opt - slack,
            "auction {} below optimum {} − slack {}", m.total_weight, opt, slack);
    }

    #[test]
    fn greedy_matches_every_matchable_task_on_full_graphs(
        nu in 1usize..10, nv in 1usize..10, seed in 0u64..100
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = BipartiteGraph::full(nu, nv, |_, _| {
            use rand::Rng;
            rng.gen::<f64>()
        }).unwrap();
        let m = GreedyMatcher.assign(&g, &mut SmallRng::seed_from_u64(0));
        prop_assert_eq!(m.len(), nu.min(nv));
    }
}
