//! Cross-crate integration: the full simulation pipeline.

use react::core::MatcherPolicy;
use react::crowd::{RunReport, Scenario, ScenarioRunner};

fn run(matcher: MatcherPolicy, seed: u64) -> RunReport {
    ScenarioRunner::new(Scenario::smoke(matcher, seed)).run()
}

#[test]
fn every_policy_completes_a_smoke_scenario() {
    for policy in [
        MatcherPolicy::React { cycles: 300 },
        MatcherPolicy::ReactAdaptive { kappa: 0.2 },
        MatcherPolicy::Metropolis { cycles: 300 },
        MatcherPolicy::Greedy,
        MatcherPolicy::Traditional,
        MatcherPolicy::Auction,
        MatcherPolicy::MaxCardinality,
    ] {
        let r = run(policy, 11);
        assert_eq!(r.received, 120, "{policy:?}");
        assert!(r.completed > 0, "{policy:?} completed nothing");
        assert!(
            r.completed + r.expired_unassigned >= r.received,
            "{policy:?} lost tasks: completed {} + expired {} < received {}",
            r.completed,
            r.expired_unassigned,
            r.received
        );
    }
}

#[test]
fn conservation_no_task_is_double_counted() {
    let r = run(MatcherPolicy::React { cycles: 300 }, 3);
    // Completions and queue-expiries partition the received tasks
    // (an in-flight task at the horizon would be the only exception;
    // the runner drains them before stopping).
    assert_eq!(r.completed + r.expired_unassigned, r.received);
    assert_eq!(r.exec_times.len() as u64, r.completed);
    assert_eq!(r.total_times.len() as u64, r.completed);
}

#[test]
fn react_dominates_traditional_on_the_paper_metrics() {
    // Averaged over a few seeds to be robust against one lucky run.
    let mut react_met = 0u64;
    let mut trad_met = 0u64;
    let mut react_pos = 0u64;
    let mut trad_pos = 0u64;
    for seed in 0..3 {
        let a = run(MatcherPolicy::React { cycles: 300 }, seed);
        let b = run(MatcherPolicy::Traditional, seed);
        react_met += a.met_deadline;
        trad_met += b.met_deadline;
        react_pos += a.positive_feedback;
        trad_pos += b.positive_feedback;
    }
    assert!(
        react_met > trad_met,
        "react met {react_met} vs traditional {trad_met}"
    );
    assert!(
        react_pos > trad_pos,
        "react positive {react_pos} vs traditional {trad_pos}"
    );
}

#[test]
fn exec_times_within_behavior_bounds() {
    let r = run(MatcherPolicy::React { cycles: 300 }, 5);
    for &t in &r.exec_times {
        // 1–20 s honest, up to 130 s delayed; queueing cannot apply to
        // availability-aware policies.
        assert!(t > 0.0 && t <= 131.0, "exec time {t} out of range");
    }
    for (&total, &exec) in r.total_times.iter().zip(&r.exec_times) {
        assert!(total + 1e-9 >= exec, "total time {total} below exec {exec}");
    }
}

#[test]
fn traditional_total_times_include_worker_queueing() {
    let r = run(MatcherPolicy::Traditional, 5);
    // With blind assignment some tasks queue behind a busy worker, so
    // the max total time should exceed the max possible single
    // execution noticeably more often than not; at minimum the averages
    // must satisfy total ≥ exec.
    assert!(r.avg_total_time() >= r.avg_exec_time() - 1e-9);
}

#[test]
fn adaptive_react_is_competitive_with_fixed() {
    let fixed = run(MatcherPolicy::React { cycles: 300 }, 9);
    let adaptive = run(MatcherPolicy::ReactAdaptive { kappa: 0.3 }, 9);
    assert!(
        adaptive.deadline_ratio() > fixed.deadline_ratio() * 0.7,
        "adaptive {:.2} vs fixed {:.2}",
        adaptive.deadline_ratio(),
        fixed.deadline_ratio()
    );
}
